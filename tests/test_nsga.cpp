// NSGA-II / NSGA-III engines: population discipline, constraint modes,
// repair hooks, improvement over random, parallel evaluation.
#include <gtest/gtest.h>

#include "ea/nsga2.h"
#include "ea/nsga3.h"
#include "tabu/repair.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

NsgaConfig quick_config() {
  NsgaConfig cfg;  // Table III defaults...
  cfg.population_size = 20;        // ...scaled down for test speed
  cfg.max_evaluations = 400;
  cfg.reference_divisions = 4;
  return cfg;
}

double mean_random_aggregate(const AllocationProblem& problem,
                             std::uint64_t seed) {
  Rng rng(seed);
  double total = 0.0;
  const int samples = 50;
  for (int i = 0; i < samples; ++i) {
    Individual ind;
    ind.genes.resize(problem.gene_count());
    randomize_genes(ind.genes, problem.max_gene(), rng);
    problem.evaluate(ind);
    total += ind.objectives[0] + ind.objectives[1] + ind.objectives[2];
  }
  return total / samples;
}

double best_front_aggregate(const std::vector<Individual>& front) {
  double best = std::numeric_limits<double>::infinity();
  for (const Individual& i : front) {
    best = std::min(best,
                    i.objectives[0] + i.objectives[1] + i.objectives[2]);
  }
  return best;
}

TEST(Nsga2, MaintainsPopulationSizeAndBudget) {
  const Instance inst = test::make_random_instance(1, 8, 16);
  const AllocationProblem problem(inst);
  Nsga2 engine(problem, quick_config());
  const auto result = engine.run(1);
  EXPECT_EQ(result.population.size(), 20u);
  EXPECT_GE(result.evaluations, 400u);
  EXPECT_LT(result.evaluations, 400u + 2 * 20u);  // one generation overshoot
  EXPECT_FALSE(result.front.empty());
  EXPECT_GT(result.generations, 0u);
}

TEST(Nsga2, ImprovesOverRandomSampling) {
  const Instance inst = test::make_random_instance(2, 8, 24);
  const AllocationProblem problem(inst);
  Nsga2 engine(problem, quick_config());
  const auto result = engine.run(3);
  EXPECT_LT(best_front_aggregate(result.front),
            mean_random_aggregate(problem, 99));
}

TEST(Nsga2, DeterministicPerSeed) {
  const Instance inst = test::make_random_instance(3, 8, 16);
  const AllocationProblem problem(inst);
  Nsga2 a(problem, quick_config());
  Nsga2 b(problem, quick_config());
  const auto ra = a.run(42);
  const auto rb = b.run(42);
  ASSERT_EQ(ra.front.size(), rb.front.size());
  for (std::size_t i = 0; i < ra.front.size(); ++i) {
    EXPECT_EQ(ra.front[i].genes, rb.front[i].genes);
  }
}

TEST(Nsga2, FrontIsMutuallyNondominated) {
  const Instance inst = test::make_random_instance(4, 8, 16);
  const AllocationProblem problem(inst);
  Nsga2 engine(problem, quick_config());
  const auto result = engine.run(7);
  for (const Individual& a : result.front) {
    for (const Individual& b : result.front) {
      EXPECT_FALSE(dominates(a, b) && dominates(b, a));
    }
  }
}

TEST(Nsga3, MaintainsPopulationSize) {
  const Instance inst = test::make_random_instance(5, 8, 16);
  const AllocationProblem problem(inst);
  Nsga3 engine(problem, quick_config());
  const auto result = engine.run(1);
  EXPECT_EQ(result.population.size(), 20u);
  EXPECT_FALSE(result.front.empty());
}

TEST(Nsga3, ReferencePointCountMatchesDivisions) {
  const Instance inst = test::make_random_instance(6, 8, 16);
  const AllocationProblem problem(inst);
  NsgaConfig cfg = quick_config();
  cfg.reference_divisions = 12;
  Nsga3 engine(problem, cfg);
  EXPECT_EQ(engine.reference_points().size(), 91u);  // C(14,2)
}

TEST(Nsga3, ImprovesOverRandomSampling) {
  const Instance inst = test::make_random_instance(7, 8, 24);
  const AllocationProblem problem(inst);
  Nsga3 engine(problem, quick_config());
  const auto result = engine.run(11);
  EXPECT_LT(best_front_aggregate(result.front),
            mean_random_aggregate(problem, 98));
}

TEST(Nsga3, RepairModeYieldsFeasibleFront) {
  Instance inst = test::make_random_instance(8, 8, 24);
  const AllocationProblem problem(inst);
  TabuRepair repair(inst);
  NsgaConfig cfg = quick_config();
  cfg.constraint_mode = ConstraintMode::kRepair;
  Nsga3 engine(problem, cfg,
               [&repair](std::vector<std::int32_t>& genes, Rng& rng) {
                 repair.repair(genes, rng);
               });
  const auto result = engine.run(13);
  EXPECT_GT(result.repair_invocations, 0u);
  for (const Individual& i : result.front) {
    EXPECT_EQ(i.violations, 0u);
  }
}

TEST(Nsga3, IgnoreModeTypicallyViolates) {
  // Unmodified NSGA on a constrained instance: the front may violate —
  // the paper's Fig. 10 finding.  Use a tight instance so violations are
  // all but certain.
  ScenarioConfig cfg = ScenarioConfig::paper_scale(16);
  cfg.vms = 64;
  cfg.constrained_fraction = 0.6;
  const Instance inst = ScenarioGenerator(cfg).generate(3);
  const AllocationProblem problem(inst);
  Nsga3 engine(problem, quick_config());
  const auto result = engine.run(5);
  std::uint32_t total_violations = 0;
  for (const Individual& i : result.population) {
    total_violations += i.violations;
  }
  EXPECT_GT(total_violations, 0u);
}

TEST(NsgaBase, PenaltyModeRuns) {
  const Instance inst = test::make_random_instance(9, 8, 16);
  const AllocationProblem problem(inst);
  NsgaConfig cfg = quick_config();
  cfg.constraint_mode = ConstraintMode::kPenalty;
  Nsga2 engine(problem, cfg);
  const auto result = engine.run(17);
  EXPECT_EQ(result.population.size(), 20u);
}

TEST(NsgaBase, ExcludeModeKeepsPopulationFilled) {
  const Instance inst = test::make_random_instance(10, 8, 16);
  const AllocationProblem problem(inst);
  NsgaConfig cfg = quick_config();
  cfg.constraint_mode = ConstraintMode::kExclude;
  Nsga3 engine(problem, cfg);
  const auto result = engine.run(19);
  EXPECT_EQ(result.population.size(), 20u);
}

TEST(NsgaBase, ParallelEvaluationMatchesSerial) {
  const Instance inst = test::make_random_instance(11, 8, 24);
  const AllocationProblem problem(inst);
  NsgaConfig serial = quick_config();
  serial.threads = 1;
  NsgaConfig parallel = quick_config();
  parallel.threads = 4;
  Nsga2 a(problem, serial);
  Nsga2 b(problem, parallel);
  const auto ra = a.run(23);
  const auto rb = b.run(23);
  // Same seed, same algorithm: evaluation order cannot affect results.
  ASSERT_EQ(ra.front.size(), rb.front.size());
  for (std::size_t i = 0; i < ra.front.size(); ++i) {
    EXPECT_EQ(ra.front[i].genes, rb.front[i].genes);
  }
}

// The tentpole guarantee of the two-phase generation loop: for a fixed
// seed, thread count must not change anything observable — final fronts,
// full populations, and the repair/evaluation tallies — in any of the
// paper's four constraint modes.
TEST(NsgaBase, ThreadCountInvariantInAllConstraintModes) {
  const Instance inst = test::make_random_instance(21, 8, 32);
  const AllocationProblem problem(inst);
  TabuRepair repair(inst);
  const RepairFn repair_fn = [&repair](std::vector<std::int32_t>& genes,
                                       Rng& rng) {
    repair.repair(genes, rng);
  };
  const StateRepairFn state_fn = [&repair](PlacementState& state, Rng& rng) {
    repair.repair_state(state, rng);
  };

  for (const ConstraintMode mode :
       {ConstraintMode::kIgnore, ConstraintMode::kExclude,
        ConstraintMode::kPenalty, ConstraintMode::kRepair}) {
    NsgaConfig serial = quick_config();
    serial.constraint_mode = mode;
    serial.threads = 1;

    Nsga3 a(problem, serial, repair_fn, state_fn);
    const auto ra = a.run(91);

    // The batch granularity is a pure scheduling knob: any thread count
    // crossed with any task_grain must reproduce the serial run exactly.
    for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                    std::size_t{7}, std::size_t{64}}) {
      NsgaConfig parallel = serial;
      parallel.threads = 8;
      parallel.task_grain = grain;

      Nsga3 b(problem, parallel, repair_fn, state_fn);
      const auto rb = b.run(91);

      EXPECT_EQ(ra.evaluations, rb.evaluations);
      EXPECT_EQ(ra.repair_invocations, rb.repair_invocations);
      EXPECT_EQ(ra.generations, rb.generations);
      ASSERT_EQ(ra.front.size(), rb.front.size());
      for (std::size_t i = 0; i < ra.front.size(); ++i) {
        EXPECT_EQ(ra.front[i].genes, rb.front[i].genes);
        EXPECT_EQ(ra.front[i].objectives, rb.front[i].objectives);
        EXPECT_EQ(ra.front[i].violations, rb.front[i].violations);
      }
      ASSERT_EQ(ra.population.size(), rb.population.size());
      for (std::size_t i = 0; i < ra.population.size(); ++i) {
        EXPECT_EQ(ra.population[i].genes, rb.population[i].genes);
        EXPECT_EQ(ra.population[i].objectives, rb.population[i].objectives);
      }
    }
  }
}

TEST(NsgaBase, TraceCountersDeterministicAcrossThreadCounts) {
  // The trace's counter columns are summed serially from per-task sink
  // blocks, so every row must be bit-identical at any thread count, and
  // the row totals must reconcile exactly with the Result tallies.
  const Instance inst = test::make_random_instance(21, 8, 32);
  const AllocationProblem problem(inst);
  TabuRepair repair(inst);
  const RepairFn repair_fn = [&repair](std::vector<std::int32_t>& genes,
                                       Rng& rng) {
    repair.repair(genes, rng);
  };
  const StateRepairFn state_fn = [&repair](PlacementState& state, Rng& rng) {
    repair.repair_state(state, rng);
  };

  NsgaConfig serial = quick_config();
  serial.constraint_mode = ConstraintMode::kRepair;
  serial.collect_trace = true;
  serial.threads = 1;
  NsgaConfig parallel = serial;
  parallel.threads = 8;

  Nsga3 a(problem, serial, repair_fn, state_fn);
  Nsga3 b(problem, parallel, repair_fn, state_fn);
  const auto ra = a.run(91);
  const auto rb = b.run(91);

  using telemetry::GenerationRow;
  ASSERT_FALSE(ra.trace.empty());
  ASSERT_EQ(ra.trace.rows.size(), ra.generations + 1);  // + generation 0
  EXPECT_EQ(ra.trace.seed, 91u);

  // Trace totals reconcile exactly with the engine's own tallies.
  EXPECT_EQ(ra.trace.total(&GenerationRow::evaluations), ra.evaluations);
  EXPECT_EQ(ra.trace.total(&GenerationRow::repair_invocations),
            ra.repair_invocations);

  ASSERT_EQ(ra.trace.rows.size(), rb.trace.rows.size());
  for (std::size_t g = 0; g < ra.trace.rows.size(); ++g) {
    const GenerationRow& x = ra.trace.rows[g];
    const GenerationRow& y = rb.trace.rows[g];
    EXPECT_EQ(x.generation, y.generation);
    EXPECT_EQ(x.evaluations, y.evaluations);
    EXPECT_EQ(x.repair_invocations, y.repair_invocations);
    EXPECT_EQ(x.front_size, y.front_size);
    EXPECT_EQ(x.best_objectives, y.best_objectives);
#if IAAS_TELEMETRY
    EXPECT_EQ(x.full_rebuilds, y.full_rebuilds);
    EXPECT_EQ(x.delta_moves, y.delta_moves);
    EXPECT_EQ(x.rebases, y.rebases);
    EXPECT_EQ(x.repaired, y.repaired);
    EXPECT_EQ(x.unrepairable, y.unrepairable);
    EXPECT_EQ(x.tabu_moves_tried, y.tabu_moves_tried);
    EXPECT_EQ(x.tabu_moves_accepted, y.tabu_moves_accepted);
    // Every repair walk that saw violations resolved one way or the
    // other; evaluations imply at least one rebuild or delta read-out.
    EXPECT_LE(x.repaired + x.unrepairable, x.repair_invocations);
    if (x.evaluations > 0) {
      EXPECT_GT(x.full_rebuilds, 0u);
    }
#endif
  }

  // Tracing must not perturb the search itself.
  EXPECT_EQ(ra.evaluations, rb.evaluations);
  ASSERT_EQ(ra.population.size(), rb.population.size());
  for (std::size_t i = 0; i < ra.population.size(); ++i) {
    EXPECT_EQ(ra.population[i].genes, rb.population[i].genes);
  }
}

TEST(NsgaBase, TraceOffByDefaultAndEmpty) {
  const Instance inst = test::make_random_instance(5, 8, 16);
  const AllocationProblem problem(inst);
  Nsga2 engine(problem, quick_config());
  const auto result = engine.run(7);
  EXPECT_TRUE(result.trace.empty());
}

TEST(Nsga3, FusedRepairPathYieldsFeasibleFront) {
  // Same expectations as RepairModeYieldsFeasibleFront, but through the
  // fused repair-as-evaluation pipeline (StateRepairFn supplied).
  Instance inst = test::make_random_instance(22, 8, 24);
  const AllocationProblem problem(inst);
  TabuRepair repair(inst);
  NsgaConfig cfg = quick_config();
  cfg.constraint_mode = ConstraintMode::kRepair;
  Nsga3 engine(
      problem, cfg,
      [&repair](std::vector<std::int32_t>& genes, Rng& rng) {
        repair.repair(genes, rng);
      },
      [&repair](PlacementState& state, Rng& rng) {
        repair.repair_state(state, rng);
      });
  const auto result = engine.run(13);
  EXPECT_GT(result.repair_invocations, 0u);
  for (const Individual& i : result.front) {
    EXPECT_EQ(i.violations, 0u);
  }
  // Fused evaluations must agree with the rebuild facade on the final
  // front members (the repaired genes re-evaluated from scratch).
  for (const Individual& i : result.front) {
    Individual fresh;
    fresh.genes = i.genes;
    problem.evaluate(fresh);
    EXPECT_EQ(fresh.violations, i.violations);
    for (std::size_t o = 0; o < ObjectiveVector::kCount; ++o) {
      EXPECT_NEAR(fresh.objectives[o], i.objectives[o], 1e-7);
    }
  }
}

TEST(Nsga3, NicheTournamentRunsAndStaysDeterministic) {
  const Instance inst = test::make_random_instance(14, 8, 24);
  const AllocationProblem problem(inst);
  NsgaConfig cfg = quick_config();
  cfg.niche_tournament = true;  // U-NSGA-III variant
  Nsga3 a(problem, cfg);
  Nsga3 b(problem, cfg);
  const auto ra = a.run(31);
  const auto rb = b.run(31);
  EXPECT_EQ(ra.population.size(), 20u);
  ASSERT_EQ(ra.front.size(), rb.front.size());
  for (std::size_t i = 0; i < ra.front.size(); ++i) {
    EXPECT_EQ(ra.front[i].genes, rb.front[i].genes);
  }
}

TEST(Nsga3, NicheTournamentStillImprovesOverRandom) {
  const Instance inst = test::make_random_instance(15, 8, 24);
  const AllocationProblem problem(inst);
  NsgaConfig cfg = quick_config();
  cfg.niche_tournament = true;
  Nsga3 engine(problem, cfg);
  const auto result = engine.run(37);
  EXPECT_LT(best_front_aggregate(result.front),
            mean_random_aggregate(problem, 97));
}

TEST(AllocationProblem, WarmStartGenesMirrorPrevious) {
  Instance inst = test::make_random_instance(16, 8, 16);
  inst.previous.assign(0, 3);
  inst.previous.assign(5, 7);
  const AllocationProblem problem(inst);
  Rng rng(1);
  const auto genes = problem.warm_start_genes(rng);
  ASSERT_EQ(genes.size(), 16u);
  EXPECT_EQ(genes[0], 3);
  EXPECT_EQ(genes[5], 7);
  for (std::int32_t g : genes) {
    EXPECT_GE(g, 0);  // unplaced VMs randomised, never left rejected
    EXPECT_LE(g, problem.max_gene());
  }
}

TEST(AllocationProblem, WarmStartEmptyWithoutPrevious) {
  const Instance inst = test::make_random_instance(17, 8, 16);
  const AllocationProblem problem(inst);
  Rng rng(1);
  EXPECT_TRUE(problem.warm_start_genes(rng).empty());
}

TEST(AllocationProblem, EvaluateSetsAllFields) {
  const Instance inst = test::make_random_instance(12, 8, 16);
  const AllocationProblem problem(inst);
  Individual ind;
  ind.genes.assign(problem.gene_count(), 0);
  problem.evaluate(ind);
  EXPECT_TRUE(ind.evaluated);
  EXPECT_GT(ind.objectives[0], 0.0);  // everything on server 0 costs
}

TEST(AllocationProblem, EvaluatePopulationSkipsEvaluated) {
  const Instance inst = test::make_random_instance(13, 8, 16);
  const AllocationProblem problem(inst);
  Population pop(4);
  for (Individual& i : pop) {
    i.genes.assign(problem.gene_count(), 0);
  }
  pop[0].evaluated = true;  // pretend
  const std::size_t evaluated = problem.evaluate_population(pop, nullptr);
  EXPECT_EQ(evaluated, 3u);
}

}  // namespace
}  // namespace iaas
