// The multi-cloud brokering subsystem: market config validation
// (fail-loud), the pricing stack (billing models x spot series x
// shocks), the provider outage lifecycle, assignment units, broker
// routing, the cross-cloud redirect budget (a decommissioned home
// provider's orphans must be permanently rejected, not circulate
// forever), warm-start front hand-off, per-provider metric columns in
// the deterministic fingerprint, and bit-identical brokered replays
// across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "broker/broker.h"
#include "broker/market.h"
#include "broker/multicloud_sim.h"
#include "io/trace_json.h"
#include "sim/retry_queue.h"
#include "sim/simulator.h"
#include "workload/generator.h"
#include "workload/market_events.h"

namespace iaas {
namespace {

ScenarioConfig tiny_scenario(std::uint32_t servers = 16,
                             std::uint32_t vms = 24) {
  ScenarioConfig cfg;
  cfg.datacenters = 1;
  cfg.total_servers = servers;
  cfg.servers_per_leaf = 8;
  cfg.vms = vms;
  return cfg;
}

CloudMarketConfig two_provider_market(std::uint32_t alpha_servers = 16,
                                      std::uint32_t beta_servers = 16) {
  CloudMarketConfig market;
  ProviderConfig alpha;
  alpha.id = "alpha";
  alpha.scenario = tiny_scenario(alpha_servers);
  alpha.pricing.billing = BillingModel::kOnDemand;
  alpha.pricing.on_demand_multiplier = 1.0;

  ProviderConfig beta;
  beta.id = "beta";
  beta.scenario = tiny_scenario(beta_servers);
  beta.pricing.billing = BillingModel::kReserved;
  beta.pricing.reserved_multiplier = 0.6;

  market.providers = {alpha, beta};
  return market;
}

MultiCloudSimConfig tiny_sim_config() {
  MultiCloudSimConfig cfg;
  cfg.windows = 6;
  cfg.arrival_schedule = {8, 6, 4};
  cfg.departure_probability = 0.1;
  cfg.retry.max_attempts = 3;
  cfg.market = two_provider_market();
  cfg.request_shape = tiny_scenario();
  return cfg;
}

bool has_finding(const std::vector<std::string>& findings,
                 const std::string& needle) {
  return std::any_of(findings.begin(), findings.end(),
                     [&needle](const std::string& f) {
                       return f.find(needle) != std::string::npos;
                     });
}

// --- market config validation (fail-loud) ---------------------------

TEST(ValidateMarket, CleanConfigHasNoFindings) {
  EXPECT_TRUE(validate_market(two_provider_market()).empty());
}

TEST(ValidateMarket, EmptyProviderList) {
  EXPECT_TRUE(has_finding(validate_market(CloudMarketConfig{}),
                          "provider list is empty"));
}

TEST(ValidateMarket, DuplicateAndEmptyIds) {
  CloudMarketConfig market = two_provider_market();
  market.providers[1].id = "alpha";
  EXPECT_TRUE(has_finding(validate_market(market), "duplicates id"));
  market.providers[1].id = "";
  EXPECT_TRUE(has_finding(validate_market(market), "empty id"));
}

TEST(ValidateMarket, NonPositivePrices) {
  CloudMarketConfig market = two_provider_market();
  market.providers[0].pricing.on_demand_multiplier = -1.0;
  EXPECT_TRUE(has_finding(validate_market(market),
                          "on_demand_multiplier must be positive"));

  market = two_provider_market();
  market.providers[1].pricing.reserved_multiplier = 0.0;
  EXPECT_TRUE(has_finding(validate_market(market),
                          "reserved_multiplier must be positive"));

  market = two_provider_market();
  market.providers[0].pricing.spot.multipliers = {1.0, -0.5};
  EXPECT_TRUE(has_finding(validate_market(market),
                          "non-positive multiplier"));

  market = two_provider_market();
  market.providers[0].pricing.shocks = {{/*window=*/0, /*duration=*/1,
                                         /*factor=*/0.0}};
  EXPECT_TRUE(has_finding(validate_market(market),
                          "shock factor must be positive"));
}

TEST(ValidateMarket, OutOfRangeOutageScript) {
  CloudMarketConfig market = two_provider_market();
  ProviderOutageScript outage;
  outage.provider = 7;
  market.outages = {outage};
  EXPECT_TRUE(has_finding(validate_market(market), "beyond the market"));
}

TEST(MarketContracts, ConstructorRefusesInvalidConfig) {
  CloudMarketConfig market = two_provider_market();
  market.providers[0].pricing.on_demand_multiplier = -2.0;
  EXPECT_DEATH({ CloudMarket bad(market, 1); }, "must be positive");
  EXPECT_DEATH({ CloudMarket none(CloudMarketConfig{}, 1); }, "empty");
}

// --- pricing --------------------------------------------------------

TEST(ProviderPricing, BillingBases) {
  ProviderPricing pricing;
  pricing.on_demand_multiplier = 1.25;
  pricing.reserved_multiplier = 0.6;
  pricing.billing = BillingModel::kOnDemand;
  EXPECT_DOUBLE_EQ(pricing.price_multiplier(0), 1.25);
  pricing.billing = BillingModel::kReserved;
  EXPECT_DOUBLE_EQ(pricing.price_multiplier(0), 0.6);
}

TEST(ProviderPricing, SpotSeriesWrapsAroundTheHorizon) {
  ProviderPricing pricing;
  pricing.billing = BillingModel::kSpot;
  pricing.on_demand_multiplier = 2.0;
  pricing.spot.multipliers = {0.5, 1.0, 1.5};
  EXPECT_DOUBLE_EQ(pricing.price_multiplier(0), 1.0);
  EXPECT_DOUBLE_EQ(pricing.price_multiplier(2), 3.0);
  EXPECT_DOUBLE_EQ(pricing.price_multiplier(3), 1.0);  // wraps
  EXPECT_DOUBLE_EQ(pricing.price_multiplier(5), 3.0);
}

TEST(ProviderPricing, ShocksMultiplyWhileActive) {
  ProviderPricing pricing;  // on-demand 1.0
  pricing.shocks = {{/*window=*/2, /*duration=*/2, /*factor=*/3.0},
                    {/*window=*/3, /*duration=*/1, /*factor=*/2.0}};
  EXPECT_DOUBLE_EQ(pricing.price_multiplier(1), 1.0);
  EXPECT_DOUBLE_EQ(pricing.price_multiplier(2), 3.0);
  EXPECT_DOUBLE_EQ(pricing.price_multiplier(3), 6.0);  // overlap
  EXPECT_DOUBLE_EQ(pricing.price_multiplier(4), 1.0);
}

TEST(MarketEvents, DiurnalSpotSeriesDeterministicAndPositive) {
  const SpotPriceSeries a =
      diurnal_spot_series(16, 0.8, 0.3, 8, 0.05, 11);
  const SpotPriceSeries b =
      diurnal_spot_series(16, 0.8, 0.3, 8, 0.05, 11);
  ASSERT_EQ(a.multipliers.size(), 16u);
  EXPECT_EQ(a.multipliers, b.multipliers);
  for (double m : a.multipliers) {
    EXPECT_GT(m, 0.0);
  }
  const SpotPriceSeries c =
      diurnal_spot_series(16, 0.8, 0.3, 8, 0.05, 12);
  EXPECT_NE(a.multipliers, c.multipliers);
}

// --- provider outage lifecycle --------------------------------------

TEST(CloudMarket, ScriptedOutageRecoversAfterDuration) {
  CloudMarketConfig config = two_provider_market();
  ProviderOutageScript outage;
  outage.window = 1;
  outage.provider = 0;
  outage.duration = 2;
  config.outages = {outage};
  CloudMarket market(config, 5);

  EXPECT_TRUE(market.advance(0).empty());
  EXPECT_EQ(market.online_count(), 2u);

  const std::vector<MarketEvent> down = market.advance(1);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].kind, MarketEventKind::kProviderOutage);
  EXPECT_EQ(down[0].provider, 0u);
  EXPECT_FALSE(market.provider(0).online());
  EXPECT_EQ(market.online_count(), 1u);

  EXPECT_TRUE(market.advance(2).empty());  // still dark
  EXPECT_FALSE(market.provider(0).online());

  const std::vector<MarketEvent> up = market.advance(3);
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].kind, MarketEventKind::kProviderRecovery);
  EXPECT_TRUE(market.provider(0).online());
  EXPECT_EQ(market.online_count(), 2u);
}

TEST(CloudMarket, DecommissionIsPermanent) {
  CloudMarketConfig config = two_provider_market();
  ProviderOutageScript gone;
  gone.window = 1;
  gone.provider = 1;
  gone.duration = 1;
  gone.decommission = true;
  config.outages = {gone};
  CloudMarket market(config, 5);

  market.advance(0);
  const std::vector<MarketEvent> events = market.advance(1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MarketEventKind::kProviderDecommission);
  for (std::size_t w = 2; w < 10; ++w) {
    EXPECT_TRUE(market.advance(w).empty());
    EXPECT_TRUE(market.provider(1).decommissioned());
    EXPECT_FALSE(market.provider(1).online());
  }
}

TEST(CloudMarket, CheapestMultiplierSkipsOfflineProviders) {
  CloudMarketConfig config = two_provider_market();  // beta at 0.6
  ProviderOutageScript outage;
  outage.window = 0;
  outage.provider = 1;
  outage.duration = 1;
  config.outages = {outage};
  CloudMarket market(config, 5);

  market.advance(0);  // beta dark: only alpha's 1.0 remains
  EXPECT_DOUBLE_EQ(market.cheapest_multiplier(0), 1.0);
  market.advance(1);  // beta back
  EXPECT_DOUBLE_EQ(market.cheapest_multiplier(1), 0.6);
}

// --- assignment units -----------------------------------------------

TEST(AssignmentUnits, TransitiveClosureMergesOverlappingGroups) {
  RequestSet requests;
  requests.vms.resize(6);
  for (VmRequest& vm : requests.vms) {
    vm.demand = {1.0, 1.0, 1.0};
  }
  PlacementConstraint a;
  a.kind = RelationKind::kSameDatacenter;
  a.vms = {0, 2};
  PlacementConstraint b;
  b.kind = RelationKind::kDifferentServers;
  b.vms = {2, 4};
  requests.constraints = {a, b};

  const std::vector<std::vector<std::uint32_t>> units =
      assignment_units(requests);
  // {0,2,4} merged through the shared VM 2; 1, 3, 5 are singletons;
  // units ordered by smallest member.
  ASSERT_EQ(units.size(), 4u);
  EXPECT_EQ(units[0], (std::vector<std::uint32_t>{0, 2, 4}));
  EXPECT_EQ(units[1], (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(units[2], (std::vector<std::uint32_t>{3}));
  EXPECT_EQ(units[3], (std::vector<std::uint32_t>{5}));
}

// --- broker routing and allocation ----------------------------------

TEST(BrokerAllocator, RoutePrefersCheapestFeasible) {
  CloudMarket market(two_provider_market(), 7);
  BrokerAllocator broker(market, BrokerConfig{});

  const std::vector<double> demand = {1.0, 1.0, 1.0};
  std::vector<std::vector<double>> load(
      2, std::vector<double>(market.provider(0).infrastructure()
                                 .attribute_count(),
                             0.0));
  std::vector<char> exclude(2, 0);

  // beta (reserved 0.6) beats alpha (on-demand 1.0).
  EXPECT_EQ(broker.route(demand, 0, load, exclude), 1u);
  exclude[1] = 1;
  EXPECT_EQ(broker.route(demand, 0, load, exclude), 0u);
  exclude[0] = 1;
  EXPECT_EQ(broker.route(demand, 0, load, exclude),
            BrokerAllocator::kNoProvider);

  // An absurd demand fits nowhere.
  const std::vector<double> huge = {1e12, 1e12, 1e12};
  std::fill(exclude.begin(), exclude.end(), 0);
  EXPECT_EQ(broker.route(huge, 0, load, exclude),
            BrokerAllocator::kNoProvider);
}

TEST(BrokerAllocator, AllocateKeepsGroupsOnOneCloud) {
  CloudMarket market(two_provider_market(), 7);
  BrokerConfig config;
  config.mode = BrokerMode::kCheapestFeasible;
  BrokerAllocator broker(market, config);

  const ScenarioGenerator generator(tiny_scenario());
  const RequestSet requests = generator.generate_requests(
      market.provider(0).infrastructure(), 20, 33);
  const BrokerResult result = broker.allocate(requests, 0, 33);

  EXPECT_EQ(result.vm_count, requests.vm_count());
  ASSERT_EQ(result.provider_of_vm.size(), requests.vm_count());
  EXPECT_LT(result.rejected, result.vm_count);
  for (const std::vector<std::uint32_t>& unit :
       assignment_units(requests)) {
    for (std::uint32_t k : unit) {
      EXPECT_EQ(result.provider_of_vm[k],
                result.provider_of_vm[unit.front()])
          << "relationship group split across clouds";
    }
  }
}

// --- retry queue redirect metadata ----------------------------------

TEST(RetryQueue, CarriesRedirectsAndHomeProvider) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_windows = 1;
  RetryQueue queue(policy);

  VmRequest vm;
  vm.demand = {1.0};
  ASSERT_TRUE(queue.offer(vm, 1, 0, /*redirects=*/2,
                          /*home_provider=*/1));
  const std::vector<RetryEntry> due = queue.pop_due(5);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].redirects, 2u);
  EXPECT_EQ(due[0].home_provider, 1);

  // Budget exhausted: permanently rejected regardless of metadata.
  EXPECT_FALSE(queue.offer(vm, 3, 0, 2, 1));
}

// --- redirect budget: decommissioned home provider ------------------

TEST(MultiCloudSim, DecommissionedHomeOrphansArePermanentlyRejected) {
  MultiCloudSimConfig cfg;
  cfg.windows = 8;
  cfg.arrival_schedule = {20};  // far beyond beta's capacity alone
  cfg.departure_probability = 0.0;
  cfg.retry.max_attempts = 6;
  cfg.retry.backoff_cap_windows = 1;  // keep retries inside the horizon
  cfg.market = two_provider_market(/*alpha_servers=*/16,
                                   /*beta_servers=*/8);
  ProviderOutageScript gone;
  gone.window = 2;
  gone.provider = 0;  // alpha decommissions: its fleet orphans
  gone.duration = 1;
  gone.decommission = true;
  cfg.market.outages = {gone};
  // No cross-cloud budget at all: every evicted alpha VM is a
  // budget-spent orphan of a dead cloud and must be rejected on the
  // spot (fresh arrivals, home -1, route freely regardless).
  cfg.broker.max_redirects = 0;
  cfg.request_shape = tiny_scenario();

  MultiCloudSimulator sim(cfg);
  const std::vector<WindowMetrics> metrics = sim.run(17);
  ASSERT_EQ(metrics.size(), cfg.windows);

  std::size_t permanent = 0;
  for (const WindowMetrics& row : metrics) {
    permanent += row.permanently_rejected;
  }
  EXPECT_GT(permanent, 0u)
      << "orphans of a decommissioned cloud must be permanently "
         "rejected, not circulate forever";

  // Nothing ever lands back on the decommissioned provider.
  for (std::size_t w = gone.window; w < metrics.size(); ++w) {
    ASSERT_EQ(metrics[w].providers.size(), 2u);
    EXPECT_FALSE(metrics[w].providers[0].online);
    EXPECT_EQ(metrics[w].providers[0].running, 0u);
    EXPECT_GE(metrics[w].offline_providers, 1u);
  }
}

// --- determinism ----------------------------------------------------

TEST(MultiCloudSim, FingerprintIdenticalAcrossRuns) {
  const MultiCloudSimConfig cfg = tiny_sim_config();
  MultiCloudSimulator a(cfg);
  MultiCloudSimulator b(cfg);
  EXPECT_EQ(deterministic_fingerprint(a.run(23)),
            deterministic_fingerprint(b.run(23)));
  MultiCloudSimulator c(cfg);
  EXPECT_NE(deterministic_fingerprint(c.run(24)),
            deterministic_fingerprint(b.run(23)));
}

TEST(MultiCloudSim, FingerprintIdenticalAcrossThreadCounts) {
  MultiCloudSimConfig cfg = tiny_sim_config();
  cfg.windows = 3;
  cfg.broker.mode = BrokerMode::kMarketAware;
  cfg.broker.backend = AlgorithmId::kNsga3Tabu;
  cfg.broker.suite.ea.nsga.population_size = 12;
  cfg.broker.suite.ea.nsga.max_evaluations = 60;
  cfg.broker.suite.ea.nsga.reference_divisions = 4;

  cfg.broker.suite.ea.nsga.threads = 1;
  MultiCloudSimulator serial(cfg);
  const std::uint64_t serial_fp =
      deterministic_fingerprint(serial.run(41));

  cfg.broker.suite.ea.nsga.threads = 4;
  MultiCloudSimulator threaded(cfg);
  EXPECT_EQ(serial_fp, deterministic_fingerprint(threaded.run(41)));
}

TEST(MultiCloudSim, FingerprintCoversPerProviderColumns) {
  MultiCloudSimulator sim(tiny_sim_config());
  const std::vector<WindowMetrics> metrics = sim.run(23);
  const std::uint64_t base = deterministic_fingerprint(metrics);
  ASSERT_GE(metrics.size(), 2u);
  ASSERT_FALSE(metrics[1].providers.empty());

  std::vector<WindowMetrics> tweaked = metrics;
  tweaked[1].providers[0].migration_cost += 1.0;
  EXPECT_NE(deterministic_fingerprint(tweaked), base);

  tweaked = metrics;
  tweaked[1].providers[0].online = !tweaked[1].providers[0].online;
  EXPECT_NE(deterministic_fingerprint(tweaked), base);

  tweaked = metrics;
  tweaked[1].redirects += 1;
  EXPECT_NE(deterministic_fingerprint(tweaked), base);

  tweaked = metrics;
  tweaked[1].cross_cloud_migration_cost += 0.5;
  EXPECT_NE(deterministic_fingerprint(tweaked), base);
}

// --- trace round-trip with provider columns -------------------------

TEST(TraceJson, ProviderColumnsRoundTrip) {
  MultiCloudSimulator sim(tiny_sim_config());
  const std::vector<WindowMetrics> metrics = sim.run(29);
  const std::vector<WindowMetrics> parsed =
      sim_trace_from_json(sim_trace_to_json(metrics));
  ASSERT_EQ(parsed.size(), metrics.size());
  for (std::size_t w = 0; w < metrics.size(); ++w) {
    EXPECT_EQ(parsed[w].providers.size(), metrics[w].providers.size());
  }
  EXPECT_EQ(deterministic_fingerprint(parsed),
            deterministic_fingerprint(metrics));
}

// --- warm-start front hand-off --------------------------------------

SuiteOptions tiny_ea_suite() {
  SuiteOptions suite;
  suite.ea.nsga.population_size = 12;
  suite.ea.nsga.max_evaluations = 60;
  suite.ea.nsga.reference_divisions = 4;
  suite.ea.nsga.threads = 1;
  return suite;
}

TEST(WarmStart, EaAllocatorExportsFrontAfterArming) {
  const ScenarioGenerator generator(tiny_scenario());
  const Instance instance = generator.generate(51);

  std::unique_ptr<Allocator> ea =
      make_allocator(AlgorithmId::kNsga3Tabu, tiny_ea_suite());
  // Before arming, results carry no front.
  AllocationResult cold = ea->allocate(instance, 9);
  EXPECT_TRUE(cold.front_genes.empty());

  ASSERT_TRUE(ea->seed_next_run({}));
  AllocationResult armed = ea->allocate(instance, 9);
  ASSERT_FALSE(armed.front_genes.empty());
  for (const std::vector<std::int32_t>& genes : armed.front_genes) {
    EXPECT_EQ(genes.size(), instance.n());
  }

  // Feeding the front back is accepted and keeps exporting.
  ASSERT_TRUE(ea->seed_next_run(std::move(armed.front_genes)));
  AllocationResult warm = ea->allocate(instance, 9);
  EXPECT_FALSE(warm.front_genes.empty());
}

TEST(WarmStart, HeuristicAllocatorsDeclineTheHandOff) {
  std::unique_ptr<Allocator> ffd =
      make_allocator(AlgorithmId::kFirstFitDecreasing);
  EXPECT_FALSE(ffd->seed_next_run({}));
}

TEST(WarmStart, CloudSimulatorWarmStartRunsDeterministically) {
  SimConfig cfg;
  cfg.windows = 4;
  cfg.arrival_schedule = {6, 4};
  cfg.scenario = tiny_scenario();
  cfg.retry.max_attempts = 2;
  cfg.warm_start_front = true;

  const auto run_once = [&cfg]() {
    CloudSimulator sim(cfg, make_allocator(AlgorithmId::kNsga3Tabu,
                                           tiny_ea_suite()));
    return deterministic_fingerprint(sim.run(13));
  };
  const std::uint64_t first = run_once();
  EXPECT_EQ(first, run_once());

  // The hand-off must actually change the search trajectory.
  cfg.warm_start_front = false;
  CloudSimulator cold(cfg, make_allocator(AlgorithmId::kNsga3Tabu,
                                          tiny_ea_suite()));
  const std::uint64_t cold_fp = deterministic_fingerprint(cold.run(13));
  EXPECT_NE(first, cold_fp);
}

TEST(MultiCloudSim, WarmStartFrontRunsDeterministically) {
  MultiCloudSimConfig cfg = tiny_sim_config();
  cfg.windows = 3;
  cfg.broker.mode = BrokerMode::kMarketAware;
  cfg.broker.backend = AlgorithmId::kNsga3Tabu;
  cfg.broker.suite = tiny_ea_suite();
  cfg.warm_start_front = true;

  MultiCloudSimulator a(cfg);
  MultiCloudSimulator b(cfg);
  EXPECT_EQ(deterministic_fingerprint(a.run(37)),
            deterministic_fingerprint(b.run(37)));
}

}  // namespace
}  // namespace iaas
