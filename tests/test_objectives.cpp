// The three objective terms of Eq. 15 (usage/opex Eq. 22, downtime
// Eq. 23, migration Eq. 26) and the Evaluator.
#include "model/objectives.h"

#include <gtest/gtest.h>

#include "model/load_model.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;

TEST(Objectives, UsageCostCountsOpexOncePerUsedServer) {
  // Two VMs on one server: opex charged once, usage twice.
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  Evaluator evaluator(inst);
  Placement p(2);
  p.assign(0, 0);
  p.assign(1, 0);
  const ObjectiveVector obj = evaluator.objectives(p);
  // Helper defaults: opex 10, usage 1.
  EXPECT_DOUBLE_EQ(obj.usage_cost, 10.0 + 2.0 * 1.0);
}

TEST(Objectives, SpreadingCostsMoreOpex) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  Evaluator evaluator(inst);
  Placement consolidated(2);
  consolidated.assign(0, 0);
  consolidated.assign(1, 0);
  Placement spread(2);
  spread.assign(0, 0);
  spread.assign(1, 1);
  EXPECT_LT(evaluator.objectives(consolidated).usage_cost,
            evaluator.objectives(spread).usage_cost);
}

TEST(Objectives, OpexPerVmModeMatchesLiteralEq22) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  ObjectiveOptions options;
  options.opex_per_vm = true;
  Evaluator evaluator(inst, options);
  Placement p(2);
  p.assign(0, 0);
  p.assign(1, 0);
  const ObjectiveVector obj = evaluator.objectives(p);
  EXPECT_DOUBLE_EQ(obj.usage_cost, 2.0 * (10.0 + 1.0));
}

TEST(Objectives, NoDowntimeCostWhenQosMet) {
  const Instance inst =
      make_instance(1, 1, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  Evaluator evaluator(inst);
  Placement p(1);
  p.assign(0, 0);  // load 0.1 << knee 0.8 -> QoS 0.95 > guarantee 0.9
  EXPECT_DOUBLE_EQ(evaluator.objectives(p).downtime_cost, 0.0);
}

TEST(Objectives, DowntimeCostProportionalToShortfall) {
  // Load 0.95 > knee 0.8: QoS = 0.95 * exp((0.8-0.95)/0.2) < guarantee.
  const Instance inst =
      make_instance(1, 1, {10.0, 10.0, 10.0}, {{9.5, 9.5, 9.5}});
  Evaluator evaluator(inst);
  Placement p(1);
  p.assign(0, 0);
  const double qos = qos_at_load(0.95, 0.8, 0.95);
  ASSERT_LT(qos, 0.9);
  const double expected = 10.0 * (1.0 - qos / 0.9);  // C^U_k = 10, C^Q = .9
  EXPECT_NEAR(evaluator.objectives(p).downtime_cost, expected, 1e-12);
}

TEST(Objectives, MigrationCostChargedOnlyForMoves) {
  Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  inst.previous.assign(0, 0);  // will stay
  inst.previous.assign(1, 1);  // will move to 2
  // VM 2 was not running: boot, no migration cost.
  Evaluator evaluator(inst);
  Placement p(3);
  p.assign(0, 0);
  p.assign(1, 2);
  p.assign(2, 1);
  // Helper migration cost = 2.0 per VM; only VM 1 moved.
  EXPECT_DOUBLE_EQ(evaluator.objectives(p).migration_cost, 2.0);
}

TEST(Objectives, TopologyWeightScalesMigrationByHops) {
  // 2 DCs x 2 servers; moving within a leaf costs 2/6 of M_k, across DCs
  // the full M_k.
  Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  inst.previous.assign(0, 0);
  ObjectiveOptions options;
  options.topology_migration_weight = true;
  Evaluator evaluator(inst, options);

  Placement same_leaf(1);
  same_leaf.assign(0, 1);  // same DC, same leaf -> 2 hops
  EXPECT_NEAR(evaluator.objectives(same_leaf).migration_cost,
              2.0 * (2.0 / 6.0), 1e-12);

  Placement cross_dc(1);
  cross_dc.assign(0, 2);  // other DC -> 6 hops
  EXPECT_NEAR(evaluator.objectives(cross_dc).migration_cost, 2.0, 1e-12);
}

TEST(Objectives, RejectedVmContributesNothing) {
  const Instance inst =
      make_instance(1, 1, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  Evaluator evaluator(inst);
  const ObjectiveVector obj = evaluator.objectives(Placement(1));
  EXPECT_DOUBLE_EQ(obj.usage_cost, 0.0);
  EXPECT_DOUBLE_EQ(obj.downtime_cost, 0.0);
  EXPECT_DOUBLE_EQ(obj.migration_cost, 0.0);
  EXPECT_DOUBLE_EQ(obj.aggregate(), 0.0);
}

TEST(Objectives, AggregateSumsEqualWeights) {
  ObjectiveVector obj;
  obj.usage_cost = 1.5;
  obj.downtime_cost = 2.5;
  obj.migration_cost = 4.0;
  EXPECT_DOUBLE_EQ(obj.aggregate(), 8.0);
  const auto arr = obj.as_array();
  EXPECT_DOUBLE_EQ(arr[0], 1.5);
  EXPECT_DOUBLE_EQ(arr[1], 2.5);
  EXPECT_DOUBLE_EQ(arr[2], 4.0);
}

TEST(Evaluator, EvaluateReturnsViolationsToo) {
  const Instance inst = make_instance(
      1, 1, {10.0, 10.0, 10.0}, {{11.0, 1.0, 1.0}});
  Evaluator evaluator(inst);
  Placement p(1);
  p.assign(0, 0);
  const Evaluation eval = evaluator.evaluate(p);
  EXPECT_EQ(eval.violations.capacity_violations, 1u);
  EXPECT_GT(eval.objectives.usage_cost, 0.0);
}

TEST(Evaluator, LastLoadsExposed) {
  const Instance inst =
      make_instance(1, 1, {10.0, 10.0, 10.0}, {{5.0, 5.0, 5.0}});
  Evaluator evaluator(inst);
  Placement p(1);
  p.assign(0, 0);
  evaluator.evaluate(p);
  EXPECT_DOUBLE_EQ(evaluator.last_loads()(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(evaluator.last_qos()(0, 0), 0.95);
}

}  // namespace
}  // namespace iaas
