// Telemetry subsystem (common/telemetry + io/trace_json): counter sinks,
// registry aggregation, run-trace emitters, and the CsvWriter failure
// contract the trace CSVs rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/csv.h"
#include "common/telemetry.h"
#include "io/trace_json.h"

namespace iaas {
namespace {

using telemetry::Counter;
using telemetry::CounterBlock;
using telemetry::GenerationRow;
using telemetry::Phase;
using telemetry::RunTrace;
using telemetry::ScopedSink;
using telemetry::ScopedTimer;

TEST(CounterBlock, MergeResetEmpty) {
  CounterBlock a;
  EXPECT_TRUE(a.empty());
  a[Counter::kEvaluations] = 3;
  a[Counter::kDeltaMoves] = 7;
  EXPECT_FALSE(a.empty());

  CounterBlock b;
  b[Counter::kEvaluations] = 2;
  b[Counter::kTabuMovesTried] = 5;
  a.merge(b);
  EXPECT_EQ(a[Counter::kEvaluations], 5u);
  EXPECT_EQ(a[Counter::kDeltaMoves], 7u);
  EXPECT_EQ(a[Counter::kTabuMovesTried], 5u);

  a.reset();
  EXPECT_TRUE(a.empty());
}

TEST(CounterNames, AllDistinctAndNamed) {
  for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
    EXPECT_STRNE(telemetry::counter_name(static_cast<Counter>(i)),
                 "unknown");
  }
  for (std::size_t i = 0; i < telemetry::kPhaseCount; ++i) {
    EXPECT_STRNE(telemetry::phase_name(static_cast<Phase>(i)), "unknown");
  }
}

#if IAAS_TELEMETRY

TEST(ScopedSink, CapturesAndRestores) {
  EXPECT_FALSE(telemetry::sink_installed());
  telemetry::count(Counter::kEvaluations);  // no sink: dropped, no crash

  CounterBlock outer;
  {
    ScopedSink sink(outer);
    EXPECT_TRUE(telemetry::sink_installed());
    telemetry::count(Counter::kEvaluations);
    CounterBlock inner;
    {
      ScopedSink nested(inner);
      telemetry::count(Counter::kEvaluations, 4);
    }
    // Nested sink restored: this lands in `outer` again.
    telemetry::count(Counter::kDeltaMoves, 2);
    EXPECT_EQ(inner[Counter::kEvaluations], 4u);
  }
  EXPECT_FALSE(telemetry::sink_installed());
  EXPECT_EQ(outer[Counter::kEvaluations], 1u);
  EXPECT_EQ(outer[Counter::kDeltaMoves], 2u);
}

#endif  // IAAS_TELEMETRY

TEST(Registry, FlushAndReset) {
  telemetry::Registry registry;
  CounterBlock block;
  block[Counter::kRepairInvocations] = 9;
  registry.flush_counters(block);
  registry.flush_counters(block);
  registry.add_phase_seconds(Phase::kRepair, 0.5);
  EXPECT_EQ(registry.counters()[Counter::kRepairInvocations], 18u);
  EXPECT_DOUBLE_EQ(
      registry.phase_seconds()[static_cast<std::size_t>(Phase::kRepair)],
      0.5);
  registry.reset();
  EXPECT_TRUE(registry.counters().empty());
}

TEST(ScopedTimer, NullTargetIsDisabled) {
  double elapsed = 0.0;
  {
    ScopedTimer off(nullptr);  // must not touch anything
    ScopedTimer on(&elapsed);
  }
  EXPECT_GE(elapsed, 0.0);
}

RunTrace sample_trace() {
  RunTrace trace;
  trace.label = "unit";
  trace.seed = 42;
  GenerationRow row;
  row.generation = 0;
  row.evaluations = 10;
  row.full_rebuilds = 11;
  row.delta_moves = 12;
  row.rebases = 5;
  row.repair_invocations = 13;
  row.repaired = 6;
  row.unrepairable = 7;
  row.tabu_moves_tried = 20;
  row.tabu_moves_accepted = 15;
  row.front_size = 4;
  row.best_objectives = {1.5, 2.5, 3.5};
  trace.rows.push_back(row);
  row.generation = 1;
  row.evaluations = 20;
  trace.rows.push_back(row);
  return trace;
}

TEST(RunTrace, TotalsAndColumnArity) {
  const RunTrace trace = sample_trace();
  EXPECT_EQ(trace.total(&GenerationRow::evaluations), 30u);
  EXPECT_EQ(trace.total(&GenerationRow::repair_invocations), 26u);
  EXPECT_EQ(RunTrace::row_values(trace.rows[0]).size(),
            RunTrace::columns().size());
}

TEST(RunTrace, CsvRoundTrip) {
  const RunTrace trace = sample_trace();
  const std::string path = "/tmp/iaas_test_trace.csv";
  trace.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("generation,evaluations"), std::string::npos);
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, trace.rows.size());
  std::filesystem::remove(path);
}

TEST(TraceJson, StructureMatchesColumns) {
  const RunTrace trace = sample_trace();
  const Json doc = trace_to_json(trace);
  EXPECT_EQ(doc.at("label").as_string(), "unit");
  EXPECT_EQ(doc.at("seed").as_number(), 42.0);
  EXPECT_EQ(doc.at("columns").size(), RunTrace::columns().size());
  EXPECT_EQ(doc.at("rows").size(), 2u);
  EXPECT_EQ(doc.at("rows").at(0).size(), RunTrace::columns().size());
  // generation / evaluations land in the right slots.
  EXPECT_EQ(doc.at("rows").at(1).at(0).as_number(), 1.0);
  EXPECT_EQ(doc.at("rows").at(1).at(1).as_number(), 20.0);
  // Round-trips through the parser.
  const Json reparsed = Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed, doc);
}

TEST(TraceJson, FileEmitterParses) {
  const std::string path = "/tmp/iaas_test_trace.json";
  write_trace_json(sample_trace(), path);
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Json doc = Json::parse(buffer.str());
  EXPECT_EQ(doc.at("rows").size(), 2u);
  std::filesystem::remove(path);
}

TEST(TraceJson, RegistrySnapshot) {
  telemetry::Registry registry;
  CounterBlock block;
  block[Counter::kTabuMovesAccepted] = 3;
  registry.flush_counters(block);
  registry.add_phase_seconds(Phase::kAllocate, 1.25);
  const Json doc = registry_to_json(registry);
  EXPECT_EQ(doc.at("counters").at("tabu_moves_accepted").as_number(), 3.0);
  EXPECT_EQ(doc.at("phase_seconds").at("allocate").as_number(), 1.25);
}

using TelemetryDeathTest = ::testing::Test;

TEST(TelemetryDeathTest, CsvWriterAbortsOnUnopenablePath) {
  EXPECT_DEATH(
      { CsvWriter csv("/nonexistent_dir_iaas/out.csv", {"a"}); },
      "cannot open");
}

TEST(TelemetryDeathTest, CsvWriterAbortsOnWriteErrorAtClose) {
  // /dev/full accepts the open but fails every flush — the classic
  // disk-full simulation.  Skip where the device is unavailable.
  if (::access("/dev/full", W_OK) != 0) {
    GTEST_SKIP() << "/dev/full not available";
  }
  EXPECT_DEATH(
      {
        CsvWriter csv("/dev/full", {"a", "b"});
        for (int i = 0; i < 100000; ++i) {
          csv.add_row({"x", "y"});  // overflow the stream buffer
        }
        csv.close();
      },
      "write error");
}

TEST(TelemetryDeathTest, TraceJsonAbortsOnUnopenablePath) {
  EXPECT_DEATH(write_trace_json(sample_trace(),
                                "/nonexistent_dir_iaas/trace.json"),
               "cannot open");
}

}  // namespace
}  // namespace iaas
