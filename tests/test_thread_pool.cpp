#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <new>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace iaas {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto f = pool.submit([&] { value = 42; });
  f.get();
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForOffsetRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145u);  // 10 + ... + 19
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::logic_error("bad index");
                                   }
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForWorksWithSingleWorker) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(0, 10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  // Single worker + calling thread both drain chunks; every index present.
  std::sort(order.begin(), order.end());
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ParallelForAbandonsUnclaimedChunksAfterException) {
  ThreadPool pool(2);
  // Index 0 (first chunk) throws immediately; every other iteration
  // stalls briefly, so chunks in flight when the abort flag goes up
  // finish but the many remaining chunks are never claimed.
  std::atomic<std::size_t> executed{0};
  const std::size_t total = 120;  // 8 chunks of 15 with 2 workers
  EXPECT_THROW(
      pool.parallel_for(0, total,
                        [&](std::size_t i) {
                          if (i == 0) {
                            throw std::runtime_error("first");
                          }
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(1));
                          executed.fetch_add(1);
                        }),
      std::runtime_error);
  // At most the chunks claimed by the (workers + caller) participants
  // before the abort became visible can have run.
  EXPECT_LT(executed.load(), total);
}

TEST(ThreadPool, UsableAfterParallelForException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   0, 10, [](std::size_t) { throw std::bad_alloc(); }),
               std::bad_alloc);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45u);
  auto f = pool.submit([&] { sum = 0; });
  f.get();
  EXPECT_EQ(sum.load(), 0u);
}

TEST(ThreadPool, ExceptionOnCallerThreadChunkPropagates) {
  // With one worker and two chunks, the calling thread drains one of
  // them itself; whichever side throws, the caller must see it.
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [](std::size_t) {
                                   throw std::runtime_error("everywhere");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForFromMultipleThreadsConcurrently) {
  // Two client threads driving disjoint parallel_for calls over one pool
  // (the pattern of several NSGA engines sharing ThreadPool::shared()).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(400);
  auto client = [&](std::size_t lo, std::size_t hi) {
    pool.parallel_for(lo, hi, [&](std::size_t i) { hits[i].fetch_add(1); });
  };
  std::thread first(client, 0, 200);
  std::thread second(client, 200, 400);
  first.join();
  second.join();
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPool, SlotsCoverEveryIndexAndStayBounded) {
  // parallel_for_slots promises slot < size(): at most one participant
  // per worker (the caller stands in for one of them).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  std::atomic<bool> bad_slot{false};
  pool.parallel_for_slots(0, hits.size(),
                          [&](std::size_t slot, std::size_t i) {
                            if (slot >= pool.size()) {
                              bad_slot = true;
                            }
                            hits[i].fetch_add(1);
                          });
  EXPECT_FALSE(bad_slot.load());
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SlotsAreExclusivePerParticipant) {
  // A participant claims its slot once and keeps it for every chunk it
  // drains — so a slot is only ever touched by one thread, which is what
  // lets the NSGA engines index per-slot arenas without locking.
  ThreadPool pool(3);
  std::mutex mu;
  std::map<std::size_t, std::thread::id> owner_of_slot;
  std::atomic<bool> conflict{false};
  pool.parallel_for_slots(0, 300, [&](std::size_t slot, std::size_t) {
    std::lock_guard lock(mu);
    const auto [it, inserted] =
        owner_of_slot.emplace(slot, std::this_thread::get_id());
    if (!inserted && it->second != std::this_thread::get_id()) {
      conflict = true;
    }
  });
  EXPECT_FALSE(conflict.load());
  EXPECT_LE(owner_of_slot.size(), pool.size());
}

TEST(ThreadPool, GrainProducesAlignedContiguousChunks) {
  // With an explicit grain, chunks are contiguous blocks of that size
  // aligned to the range start; every block must be drained by exactly
  // one slot.
  ThreadPool pool(2);
  constexpr std::size_t kGrain = 5;
  constexpr std::size_t kTotal = 20;
  std::array<std::atomic<int>, kTotal> slot_of;
  for (auto& s : slot_of) {
    s = -1;
  }
  pool.parallel_for_slots(
      0, kTotal,
      [&](std::size_t slot, std::size_t i) {
        slot_of[i] = static_cast<int>(slot);
      },
      kGrain);
  for (std::size_t block = 0; block < kTotal; block += kGrain) {
    for (std::size_t i = block; i < block + kGrain; ++i) {
      ASSERT_NE(slot_of[i].load(), -1);
      EXPECT_EQ(slot_of[i].load(), slot_of[block].load())
          << "index " << i << " left its block's chunk";
    }
  }
}

TEST(ThreadPool, GrainCoveringWholeRangeRunsSequentially) {
  // grain >= total collapses the dispatch to one chunk: a single
  // participant visits every index in order (no locking needed below).
  ThreadPool pool(4);
  std::vector<std::size_t> order;
  pool.parallel_for(
      0, 32, [&](std::size_t i) { order.push_back(i); }, 32);
  std::vector<std::size_t> expected(32);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, GrainedParallelForStillPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   0, 100,
                   [](std::size_t i) {
                     if (i == 63) {
                       throw std::logic_error("bad index");
                     }
                   },
                   /*grain=*/8),
               std::logic_error);
  // And the pool stays usable afterwards, grain or not.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(
      0, 10, [&](std::size_t i) { sum += i; }, 4);
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, ManySmallParallelForCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 8, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 8);
  }
}

}  // namespace
}  // namespace iaas
