#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <new>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace iaas {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto f = pool.submit([&] { value = 42; });
  f.get();
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForOffsetRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145u);  // 10 + ... + 19
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::logic_error("bad index");
                                   }
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForWorksWithSingleWorker) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(0, 10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  // Single worker + calling thread both drain chunks; every index present.
  std::sort(order.begin(), order.end());
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ParallelForAbandonsUnclaimedChunksAfterException) {
  ThreadPool pool(2);
  // Index 0 (first chunk) throws immediately; every other iteration
  // stalls briefly, so chunks in flight when the abort flag goes up
  // finish but the many remaining chunks are never claimed.
  std::atomic<std::size_t> executed{0};
  const std::size_t total = 120;  // 8 chunks of 15 with 2 workers
  EXPECT_THROW(
      pool.parallel_for(0, total,
                        [&](std::size_t i) {
                          if (i == 0) {
                            throw std::runtime_error("first");
                          }
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(1));
                          executed.fetch_add(1);
                        }),
      std::runtime_error);
  // At most the chunks claimed by the (workers + caller) participants
  // before the abort became visible can have run.
  EXPECT_LT(executed.load(), total);
}

TEST(ThreadPool, UsableAfterParallelForException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   0, 10, [](std::size_t) { throw std::bad_alloc(); }),
               std::bad_alloc);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45u);
  auto f = pool.submit([&] { sum = 0; });
  f.get();
  EXPECT_EQ(sum.load(), 0u);
}

TEST(ThreadPool, ExceptionOnCallerThreadChunkPropagates) {
  // With one worker and two chunks, the calling thread drains one of
  // them itself; whichever side throws, the caller must see it.
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [](std::size_t) {
                                   throw std::runtime_error("everywhere");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForFromMultipleThreadsConcurrently) {
  // Two client threads driving disjoint parallel_for calls over one pool
  // (the pattern of several NSGA engines sharing ThreadPool::shared()).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(400);
  auto client = [&](std::size_t lo, std::size_t hi) {
    pool.parallel_for(lo, hi, [&](std::size_t i) { hits[i].fetch_add(1); });
  };
  std::thread first(client, 0, 200);
  std::thread second(client, 200, 400);
  first.join();
  second.join();
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPool, ManySmallParallelForCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 8, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 8);
  }
}

}  // namespace
}  // namespace iaas
