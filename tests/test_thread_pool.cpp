#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace iaas {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto f = pool.submit([&] { value = 42; });
  f.get();
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForOffsetRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145u);  // 10 + ... + 19
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::logic_error("bad index");
                                   }
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForWorksWithSingleWorker) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(0, 10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  // Single worker + calling thread both drain chunks; every index present.
  std::sort(order.begin(), order.end());
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPool, ManySmallParallelForCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 8, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 8);
  }
}

}  // namespace
}  // namespace iaas
