// Extended baselines: Filtering (Table II's fourth family), First-Fit
// Decreasing and Best-Fit.
#include <gtest/gtest.h>

#include "algo/filtering.h"
#include "algo/heuristics.h"
#include "algo/registry.h"
#include "model/constraint_checker.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;
using test::make_random_instance;

TEST(Filtering, BalancesLoadAcrossServers) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{4.0, 4.0, 4.0}, {4.0, 4.0, 4.0}});
  FilteringAllocator filtering;
  const AllocationResult r = filtering.allocate(inst, 1);
  EXPECT_EQ(r.rejected, 0u);
  // Least-loaded weighing: the two equal VMs land on different servers.
  EXPECT_NE(r.placement.server_of(0), r.placement.server_of(1));
}

TEST(Filtering, IgnoresRelationshipsInRawOutput) {
  // Same-server pair: the filter pipeline cannot see it, so with the
  // load-balancing weigher the raw output must split the pair.
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{4.0, 4.0, 4.0}, {4.0, 4.0, 4.0}},
      {{RelationKind::kSameServer, {0, 1}}});
  FilteringAllocator filtering;
  const AllocationResult r = filtering.allocate(inst, 1);
  EXPECT_EQ(r.raw_violations.relation_violations, 1u);  // Table II: "NO"
  // Sanitization repairs it by rejection; deployable result is feasible.
  EXPECT_TRUE(ConstraintChecker(inst).check(r.placement).feasible());
  EXPECT_EQ(r.rejected, 1u);
}

TEST(Filtering, NeverOverloadsCapacity) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Instance inst = make_random_instance(seed, 8, 64);
    FilteringAllocator filtering;
    const AllocationResult r = filtering.allocate(inst, seed);
    EXPECT_EQ(r.raw_violations.capacity_violations, 0u);
  }
}

TEST(FirstFitDecreasing, PlacesLargestFirst) {
  // One big VM fits only before the smalls fill the bin.
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0},
      {{3.0, 3.0, 3.0}, {9.0, 9.0, 9.0}, {3.0, 3.0, 3.0}});
  FirstFitDecreasingAllocator ffd;
  const AllocationResult r = ffd.allocate(inst, 1);
  EXPECT_EQ(r.rejected, 0u);
  // The 9-unit VM occupies a server alone; smalls share the other.
  const std::int32_t big = r.placement.server_of(1);
  EXPECT_NE(r.placement.server_of(0), big);
  EXPECT_NE(r.placement.server_of(2), big);
}

TEST(FirstFitDecreasing, RespectsRelations) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kDifferentDatacenters, {0, 1}}});
  FirstFitDecreasingAllocator ffd;
  const AllocationResult r = ffd.allocate(inst, 1);
  EXPECT_EQ(r.raw_violations.total(), 0u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_NE(inst.infra.datacenter_of(
                static_cast<std::size_t>(r.placement.server_of(0))),
            inst.infra.datacenter_of(
                static_cast<std::size_t>(r.placement.server_of(1))));
}

TEST(BestFit, ConsolidatesTightly) {
  // Server 0 partially filled by VM 0; Best-Fit should co-locate VM 1
  // there (tightest fit) rather than open server 1.
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{6.0, 6.0, 6.0}, {3.0, 3.0, 3.0}});
  BestFitAllocator bf;
  const AllocationResult r = bf.allocate(inst, 1);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.placement.server_of(0), r.placement.server_of(1));
}

TEST(BestFit, UsesFewerServersThanFiltering) {
  const Instance inst = make_random_instance(21, 16, 64);
  BestFitAllocator bf;
  FilteringAllocator filtering;
  auto used_servers = [&](const AllocationResult& r) {
    std::vector<bool> used(inst.m(), false);
    for (std::size_t k = 0; k < inst.n(); ++k) {
      if (r.placement.is_assigned(k)) {
        used[static_cast<std::size_t>(r.placement.server_of(k))] = true;
      }
    }
    return std::count(used.begin(), used.end(), true);
  };
  EXPECT_LE(used_servers(bf.allocate(inst, 1)),
            used_servers(filtering.allocate(inst, 1)));
}

TEST(ExtendedRegistry, ThreeExtraAlgorithmsConstructible) {
  EXPECT_EQ(extended_algorithms().size(), 3u);
  for (AlgorithmId id : extended_algorithms()) {
    const auto allocator = make_allocator(id);
    ASSERT_NE(allocator, nullptr);
    EXPECT_EQ(allocator->name(), algorithm_name(id));
  }
}

class ExtendedContract : public ::testing::TestWithParam<AlgorithmId> {};

TEST_P(ExtendedContract, SanitizedFeasibleAndConsistent) {
  const Instance inst = make_random_instance(31, 16, 48);
  const auto allocator = make_allocator(GetParam());
  const AllocationResult r = allocator->allocate(inst, 3);
  EXPECT_TRUE(ConstraintChecker(inst).check(r.placement).feasible());
  EXPECT_EQ(r.rejected, r.placement.rejected_count());
  EXPECT_EQ(r.vm_count, inst.n());
}

INSTANTIATE_TEST_SUITE_P(Extras, ExtendedContract,
                         ::testing::Values(AlgorithmId::kFiltering,
                                           AlgorithmId::kFirstFitDecreasing,
                                           AlgorithmId::kBestFit));

}  // namespace
}  // namespace iaas
