// Scenario generator: determinism, structural validity, satisfiability
// guards, paper-scale shapes.
#include "workload/generator.h"

#include <gtest/gtest.h>

#include "model/constraint_checker.h"
#include "workload/strategic.h"

namespace iaas {
namespace {

TEST(ScenarioGenerator, DeterministicPerSeed) {
  const ScenarioGenerator gen(ScenarioConfig::paper_scale(32));
  const Instance a = gen.generate(7);
  const Instance b = gen.generate(7);
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.m(), b.m());
  for (std::size_t k = 0; k < a.n(); ++k) {
    EXPECT_EQ(a.requests.vms[k].demand, b.requests.vms[k].demand);
    EXPECT_DOUBLE_EQ(a.requests.vms[k].qos_guarantee,
                     b.requests.vms[k].qos_guarantee);
  }
  for (std::size_t j = 0; j < a.m(); ++j) {
    EXPECT_EQ(a.infra.server(j).capacity, b.infra.server(j).capacity);
  }
  ASSERT_EQ(a.requests.constraints.size(), b.requests.constraints.size());
  for (std::size_t c = 0; c < a.requests.constraints.size(); ++c) {
    EXPECT_EQ(a.requests.constraints[c].kind, b.requests.constraints[c].kind);
    EXPECT_EQ(a.requests.constraints[c].vms, b.requests.constraints[c].vms);
  }
}

TEST(ScenarioGenerator, DifferentSeedsDiffer) {
  const ScenarioGenerator gen(ScenarioConfig::paper_scale(32));
  const Instance a = gen.generate(1);
  const Instance b = gen.generate(2);
  bool any_difference = false;
  for (std::size_t k = 0; k < a.n() && !any_difference; ++k) {
    any_difference = a.requests.vms[k].demand != b.requests.vms[k].demand;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ScenarioGenerator, PaperScaleShape) {
  const ScenarioConfig cfg = ScenarioConfig::paper_scale(800);
  EXPECT_EQ(cfg.total_servers, 800u);
  EXPECT_EQ(cfg.vms, 1600u);  // paper: 800 servers / 1600 VMs
  const ScenarioGenerator gen(cfg);
  const Instance inst = gen.generate(1);
  EXPECT_GE(inst.m(), 800u);  // rounded up to full leaves
  EXPECT_EQ(inst.n(), 1600u);
  EXPECT_EQ(inst.g(), 2u);
}

TEST(ScenarioGenerator, ServerTotalsRoundUpToFullLeaves) {
  ScenarioConfig cfg = ScenarioConfig::paper_scale(20);  // 10/DC, leaf=8
  const ScenarioGenerator gen(cfg);
  const FabricConfig fc = gen.fabric_config();
  EXPECT_EQ(fc.leaves_per_dc, 2u);  // ceil(10/8)
  const Instance inst = gen.generate(3);
  EXPECT_EQ(inst.m(), 32u);  // 2 DC * 2 leaves * 8
}

class GeneratedInstanceValidity
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratedInstanceValidity, StructurallyValid) {
  ScenarioConfig cfg = ScenarioConfig::paper_scale(48);
  cfg.preplaced_fraction = 0.25;
  const ScenarioGenerator gen(cfg);
  const Instance inst = gen.generate(GetParam());

  // Every server and VM record passes validation.
  for (std::size_t j = 0; j < inst.m(); ++j) {
    EXPECT_TRUE(inst.infra.server(j).valid(inst.h()));
  }
  EXPECT_TRUE(inst.requests.valid(inst.h()));

  // Constraint-group guards: diff-DC groups fit the DC count; same-server
  // groups fit the largest server.
  for (const PlacementConstraint& c : inst.requests.constraints) {
    EXPECT_GE(c.vms.size(), 2u);
    if (c.kind == RelationKind::kDifferentDatacenters) {
      EXPECT_LE(c.vms.size(), inst.g());
    }
    if (c.kind == RelationKind::kSameServer) {
      for (std::size_t l = 0; l < inst.h(); ++l) {
        double sum = 0.0;
        for (std::uint32_t k : c.vms) {
          sum += inst.requests.vms[k].demand[l];
        }
        double max_eff = 0.0;
        for (std::size_t j = 0; j < inst.m(); ++j) {
          max_eff =
              std::max(max_eff, inst.infra.server(j).effective_capacity(l));
        }
        EXPECT_LE(sum, max_eff);
      }
    }
  }

  // The preplaced previous placement must itself be feasible.
  const ConstraintChecker checker(inst);
  EXPECT_TRUE(checker.check(inst.previous).feasible());
  EXPECT_GT(inst.previous.assigned_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedInstanceValidity,
                         ::testing::Values(1u, 7u, 42u, 99u, 12345u,
                                           987654321u));

TEST(ScenarioGenerator, ConstrainedFractionRespected) {
  ScenarioConfig cfg = ScenarioConfig::paper_scale(32);
  cfg.constrained_fraction = 0.5;
  const ScenarioGenerator gen(cfg);
  const Instance inst = gen.generate(11);
  std::size_t members = 0;
  for (const PlacementConstraint& c : inst.requests.constraints) {
    members += c.vms.size();
  }
  EXPECT_LE(members, inst.n() / 2 + 1);
  EXPECT_GT(members, 0u);
}

TEST(ScenarioGenerator, EachVmInAtMostOneGroup) {
  ScenarioConfig cfg = ScenarioConfig::paper_scale(64);
  cfg.constrained_fraction = 0.8;
  const ScenarioGenerator gen(cfg);
  const Instance inst = gen.generate(5);
  std::vector<int> membership(inst.n(), 0);
  for (const PlacementConstraint& c : inst.requests.constraints) {
    for (std::uint32_t k : c.vms) {
      ++membership[k];
    }
  }
  for (int m : membership) {
    EXPECT_LE(m, 1);
  }
}

TEST(ScenarioGenerator, SeparateRequestBatches) {
  const ScenarioGenerator gen(ScenarioConfig::paper_scale(16));
  const Infrastructure infra = gen.generate_infrastructure(4);
  const RequestSet a = gen.generate_requests(infra, 10, 100);
  const RequestSet b = gen.generate_requests(infra, 10, 101);
  EXPECT_EQ(a.vms.size(), 10u);
  EXPECT_EQ(b.vms.size(), 10u);
  bool differ = false;
  for (std::size_t k = 0; k < 10 && !differ; ++k) {
    differ = a.vms[k].demand != b.vms[k].demand;
  }
  EXPECT_TRUE(differ);
}

TEST(ScenarioGenerator, DefaultCatalogsAreSane) {
  for (const ServerClassParams& c : default_server_classes()) {
    EXPECT_GT(c.cpu_cores, 0.0);
    EXPECT_GT(c.weight, 0.0);
    EXPECT_GT(c.opex, 0.0);
  }
  for (const VmFlavorParams& f : default_vm_flavors()) {
    EXPECT_GT(f.cpu_cores, 0.0);
    EXPECT_GT(f.weight, 0.0);
  }
  // Largest flavor must fit the largest server class (satisfiability).
  double max_vm_cpu = 0.0;
  for (const VmFlavorParams& f : default_vm_flavors()) {
    max_vm_cpu = std::max(max_vm_cpu, f.cpu_cores);
  }
  double max_srv_cpu = 0.0;
  for (const ServerClassParams& c : default_server_classes()) {
    max_srv_cpu = std::max(max_srv_cpu, c.cpu_cores);
  }
  EXPECT_LE(max_vm_cpu, max_srv_cpu);
}

// --- strategic-consumer mode ---

ScenarioConfig strategic_config(double fraction) {
  ScenarioConfig cfg = ScenarioConfig::paper_scale(32);
  cfg.consumers = 8;
  cfg.strategic.strategic_fraction = fraction;
  cfg.strategic.profiles = default_strategy_profiles();
  return cfg;
}

void expect_same_requests(const RequestSet& a, const RequestSet& b,
                          bool compare_consumers) {
  ASSERT_EQ(a.vms.size(), b.vms.size());
  for (std::size_t k = 0; k < a.vms.size(); ++k) {
    EXPECT_EQ(a.vms[k].demand, b.vms[k].demand) << "vm " << k;
    EXPECT_EQ(a.vms[k].true_demand, b.vms[k].true_demand) << "vm " << k;
    EXPECT_DOUBLE_EQ(a.vms[k].qos_guarantee, b.vms[k].qos_guarantee);
    EXPECT_DOUBLE_EQ(a.vms[k].downtime_cost, b.vms[k].downtime_cost);
    EXPECT_DOUBLE_EQ(a.vms[k].migration_cost, b.vms[k].migration_cost);
    if (compare_consumers) {
      EXPECT_EQ(a.vms[k].consumer, b.vms[k].consumer);
    }
  }
  ASSERT_EQ(a.constraints.size(), b.constraints.size());
  for (std::size_t c = 0; c < a.constraints.size(); ++c) {
    EXPECT_EQ(a.constraints[c].kind, b.constraints[c].kind);
    EXPECT_EQ(a.constraints[c].vms, b.constraints[c].vms);
  }
}

TEST(StrategicGenerator, BitIdenticalAcrossRepeatRuns) {
  // Two independent generator instances replay the same strategic batch
  // exactly: demands, hidden true demands, and padded groups.
  const ScenarioGenerator gen_a(strategic_config(0.5));
  const ScenarioGenerator gen_b(strategic_config(0.5));
  const Instance a = gen_a.generate(7);
  const Instance b = gen_b.generate(7);
  expect_same_requests(a.requests, b.requests, /*compare_consumers=*/true);
  bool any_strategic = false;
  for (const VmRequest& vm : a.requests.vms) {
    any_strategic = any_strategic || !vm.true_demand.empty();
  }
  EXPECT_TRUE(any_strategic);
}

TEST(StrategicGenerator, FractionZeroMatchesHonestGenerator) {
  // Differential guarantee: the strategic pass consumes nothing from
  // the honest stream, so fraction 0 reproduces the legacy output
  // element for element (only the consumer tags are new).
  const ScenarioGenerator legacy(ScenarioConfig::paper_scale(32));
  const ScenarioGenerator tagged(strategic_config(0.0));
  const Instance a = legacy.generate(11);
  const Instance b = tagged.generate(11);
  expect_same_requests(a.requests, b.requests, /*compare_consumers=*/false);
  for (const VmRequest& vm : a.requests.vms) {
    EXPECT_EQ(vm.consumer, 0u);
    EXPECT_TRUE(vm.true_demand.empty());
  }
  for (const VmRequest& vm : b.requests.vms) {
    EXPECT_TRUE(vm.true_demand.empty());  // nobody misreports
  }
}

TEST(StrategicGenerator, DisabledProfilesLeaveNoFingerprints) {
  // At fraction 0 the profile contents and strategy seed must be inert.
  ScenarioConfig loud = strategic_config(0.0);
  loud.strategic.strategy_seed ^= 0xABCDEFULL;
  loud.strategic.profiles[0].inflation_max = 50.0;
  const Instance a = ScenarioGenerator(strategic_config(0.0)).generate(13);
  const Instance b = ScenarioGenerator(loud).generate(13);
  expect_same_requests(a.requests, b.requests, /*compare_consumers=*/true);
}

TEST(StrategicGenerator, InflationOnlyRaisesReportedDemand) {
  const ScenarioConfig cfg = strategic_config(0.5);
  const ScenarioGenerator gen(cfg);
  const Instance inst = gen.generate(19);

  std::vector<double> max_eff(inst.h(), 0.0);
  for (std::size_t j = 0; j < inst.m(); ++j) {
    for (std::size_t l = 0; l < inst.h(); ++l) {
      max_eff[l] =
          std::max(max_eff[l], inst.infra.server(j).effective_capacity(l));
    }
  }
  std::size_t strategic_vms = 0;
  for (const VmRequest& vm : inst.requests.vms) {
    if (vm.true_demand.empty()) {
      continue;
    }
    ++strategic_vms;
    ASSERT_EQ(vm.true_demand.size(), vm.demand.size());
    for (std::size_t l = 0; l < vm.demand.size(); ++l) {
      EXPECT_GE(vm.demand[l], vm.true_demand[l] - 1e-12);
      EXPECT_LE(vm.demand[l], max_eff[l] + 1e-12);  // stays placeable
    }
    // Misreports only come from consumers in the strategic set.
    EXPECT_TRUE(is_strategic_consumer(cfg.strategic, cfg.consumers,
                                      vm.consumer));
  }
  EXPECT_GT(strategic_vms, 0u);
}

TEST(StrategicGenerator, PaddingPreservesOneGroupPerVm) {
  ScenarioConfig cfg = strategic_config(1.0);
  cfg.constrained_fraction = 0.5;
  for (StrategyProfile& profile : cfg.strategic.profiles) {
    profile.pad_anti_affinity_probability = 1.0;  // force padding
  }
  const ScenarioGenerator gen(cfg);
  const Instance inst = gen.generate(29);

  std::vector<int> membership(inst.n(), 0);
  bool any_padded = false;
  for (const PlacementConstraint& c : inst.requests.constraints) {
    EXPECT_GE(c.vms.size(), 2u);
    any_padded =
        any_padded || c.kind == RelationKind::kDifferentServers;
    for (std::uint32_t k : c.vms) {
      ++membership[k];
    }
  }
  EXPECT_TRUE(any_padded);
  for (int m : membership) {
    EXPECT_LE(m, 1);
  }
  EXPECT_TRUE(inst.requests.valid(inst.h()));
}

TEST(StrategicGenerator, ConsumerTagsCoverTheConfiguredRange) {
  const ScenarioConfig cfg = strategic_config(0.25);
  const Instance inst = ScenarioGenerator(cfg).generate(31);
  std::vector<std::size_t> per_consumer(cfg.consumers, 0);
  for (const VmRequest& vm : inst.requests.vms) {
    ASSERT_LT(vm.consumer, cfg.consumers);
    ++per_consumer[vm.consumer];
  }
  for (std::size_t c = 0; c < per_consumer.size(); ++c) {
    EXPECT_GT(per_consumer[c], 0u) << "consumer " << c;
  }
}

}  // namespace
}  // namespace iaas
