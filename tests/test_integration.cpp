// End-to-end: the paper's qualitative findings must hold on a generated
// scenario — the shape checks behind Figs. 7-11 at test scale.
#include <gtest/gtest.h>

#include <map>

#include "algo/registry.h"
#include "model/constraint_checker.h"
#include "workload/generator.h"

namespace iaas {
namespace {

SuiteOptions integration_suite() {
  SuiteOptions suite;
  suite.ea.nsga.population_size = 28;
  suite.ea.nsga.max_evaluations = 1400;
  suite.ea.nsga.reference_divisions = 6;
  suite.cp.time_limit_seconds = 3.0;
  suite.cp.max_backtracks = 50000;
  return suite;
}

struct SuiteRun {
  std::map<AlgorithmId, AllocationResult> results;
};

SuiteRun run_all(const Instance& inst, std::uint64_t seed) {
  SuiteRun run;
  const SuiteOptions suite = integration_suite();
  for (AlgorithmId id : all_algorithms()) {
    run.results.emplace(id, make_allocator(id, suite)->allocate(inst, seed));
  }
  return run;
}

class IntegrationSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg = ScenarioConfig::paper_scale(32);
    cfg.constrained_fraction = 0.4;
    instance_ = new Instance(ScenarioGenerator(cfg).generate(2024));
    run_ = new SuiteRun(run_all(*instance_, 5));
  }
  static void TearDownTestSuite() {
    delete run_;
    delete instance_;
    run_ = nullptr;
    instance_ = nullptr;
  }

  static Instance* instance_;
  static SuiteRun* run_;
};

Instance* IntegrationSuite::instance_ = nullptr;
SuiteRun* IntegrationSuite::run_ = nullptr;

TEST_F(IntegrationSuite, EveryAlgorithmProducesDeployablePlacement) {
  const ConstraintChecker checker(*instance_);
  for (const auto& [id, result] : run_->results) {
    EXPECT_TRUE(checker.check(result.placement).feasible())
        << algorithm_name(id);
  }
}

// Fig. 10's shape: only the unmodified EAs generate raw constraint
// violations; RR, CP and the repaired hybrids never do.
TEST_F(IntegrationSuite, OnlyUnmodifiedEasViolateConstraints) {
  EXPECT_EQ(run_->results.at(AlgorithmId::kRoundRobin).raw_violations.total(),
            0u);
  EXPECT_EQ(run_->results.at(AlgorithmId::kConstraintProgramming)
                .raw_violations.total(),
            0u);
  EXPECT_EQ(
      run_->results.at(AlgorithmId::kNsga3Tabu).raw_violations.total(), 0u);
  // The unmodified EAs are all but guaranteed to violate on a constrained
  // instance of this density.
  const auto nsga2_violations =
      run_->results.at(AlgorithmId::kNsga2).raw_violations.total();
  const auto nsga3_violations =
      run_->results.at(AlgorithmId::kNsga3).raw_violations.total();
  EXPECT_GT(nsga2_violations + nsga3_violations, 0u);
}

// Fig. 9's shape: the hybrid accepts (nearly) everything; the unmodified
// EAs lose many requests to sanitization.
TEST_F(IntegrationSuite, HybridRejectsLeast) {
  const auto& tabu = run_->results.at(AlgorithmId::kNsga3Tabu);
  EXPECT_EQ(tabu.rejected, 0u);
  const auto nsga2_rejected = run_->results.at(AlgorithmId::kNsga2).rejected;
  const auto nsga3_rejected = run_->results.at(AlgorithmId::kNsga3).rejected;
  EXPECT_GT(nsga2_rejected + nsga3_rejected, tabu.rejected);
}

// Fig. 11's shape: per accepted VM, the hybrid's provider cost is in the
// same league as CP's, while the unmodified EAs pay more (no
// consolidation pressure survives sanitization).
TEST_F(IntegrationSuite, HybridCostCompetitiveWithCp) {
  auto cost_per_vm = [&](AlgorithmId id) {
    const auto& r = run_->results.at(id);
    const std::size_t accepted = r.vm_count - r.rejected;
    return accepted == 0 ? 0.0
                         : r.objectives.usage_cost /
                               static_cast<double>(accepted);
  };
  const double cp = cost_per_vm(AlgorithmId::kConstraintProgramming);
  const double tabu = cost_per_vm(AlgorithmId::kNsga3Tabu);
  const double nsga3 = cost_per_vm(AlgorithmId::kNsga3);
  EXPECT_LT(tabu, nsga3 * 1.05);  // hybrid no worse than unmodified
  EXPECT_LT(tabu, cp * 3.0);      // and within a reasonable factor of CP
}

TEST_F(IntegrationSuite, EaVariantsReportEvaluationBudget) {
  for (AlgorithmId id : {AlgorithmId::kNsga2, AlgorithmId::kNsga3,
                         AlgorithmId::kNsga3Cp, AlgorithmId::kNsga3Tabu}) {
    EXPECT_GE(run_->results.at(id).evaluations, 1400u) << algorithm_name(id);
  }
  EXPECT_EQ(run_->results.at(AlgorithmId::kRoundRobin).evaluations, 0u);
}

TEST_F(IntegrationSuite, AllSixReportWallTime) {
  for (const auto& [id, result] : run_->results) {
    EXPECT_GE(result.wall_seconds, 0.0) << algorithm_name(id);
    EXPECT_LT(result.wall_seconds, 120.0) << algorithm_name(id);
  }
}

}  // namespace
}  // namespace iaas
