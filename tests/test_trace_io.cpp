// The streaming trace path (io/emit + io/trace_stream) and the compact
// binary trace format (io/trace_binary): emitter-vs-tree byte
// equivalence, incremental per-window flushing, and lossless binary
// round trips over every trace flavour (faulted, admission-controlled,
// sharded, brokered).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algo/nsga_allocators.h"
#include "algo/sharded_allocator.h"
#include "broker/multicloud_sim.h"
#include "io/emit.h"
#include "io/json.h"
#include "io/trace_binary.h"
#include "io/trace_json.h"
#include "io/trace_stream.h"
#include "sim/simulator.h"
#include "workload/strategic.h"

namespace iaas {
namespace {

std::string load_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- JsonEmitter vs Json::dump --------------------------------------

// A document covering every emitter branch: empty containers, nesting,
// escapes, integral doubles, fractional doubles, negative zero, bools,
// null, 64-bit integer lexemes.
Json tricky_document() {
  Json doc = Json::object();
  doc["empty_object"] = Json::object();
  doc["empty_array"] = Json::array();
  doc["escapes"] = Json::string("quote\" slash\\ tab\t nl\n ctl\x01");
  doc["numbers"] = Json::array();
  doc["numbers"].push_back(Json::number(42.0));   // integral double
  doc["numbers"].push_back(Json::number(0.1));    // 17-digit mantissa
  doc["numbers"].push_back(Json::number(-0.0));   // signed zero
  doc["numbers"].push_back(Json::number(1e300));  // huge magnitude
  doc["numbers"].push_back(Json::integer(std::uint64_t{1} << 63));
  doc["numbers"].push_back(Json::integer(std::int64_t{-42}));
  doc["flags"] = Json::array();
  doc["flags"].push_back(Json::boolean(true));
  doc["flags"].push_back(Json::boolean(false));
  doc["flags"].push_back(Json::null());
  Json nested = Json::object();
  nested["inner"] = Json::array();
  nested["inner"].push_back(Json::string("x"));
  doc["nested"] = nested;
  return doc;
}

// Drive an emitter through the same structure by hand.
void emit_tricky(JsonEmitter& e) {
  e.begin_object();
  e.key("empty_object");
  e.begin_object();
  e.end_object();
  e.key("empty_array");
  e.begin_array();
  e.end_array();
  e.key("escapes");
  e.value("quote\" slash\\ tab\t nl\n ctl\x01");
  e.key("numbers");
  e.begin_array();
  e.value(42.0);
  e.value(0.1);
  e.value(-0.0);
  e.value(1e300);
  e.value(std::uint64_t{1} << 63);
  e.value(std::int64_t{-42});
  e.end_array();
  e.key("flags");
  e.begin_array();
  e.value(true);
  e.value(false);
  e.value_null();
  e.end_array();
  e.key("nested");
  e.begin_object();
  e.key("inner");
  e.begin_array();
  e.value("x");
  e.end_array();
  e.end_object();
  e.end_object();
}

TEST(JsonEmitter, MatchesTreeDumpByteForByte) {
  const Json doc = tricky_document();
  for (int indent : {-1, 0, 2, 4}) {
    std::string streamed;
    JsonEmitter e(streamed, indent);
    emit_tricky(e);
    EXPECT_EQ(streamed, doc.dump(indent)) << "indent " << indent;
  }
}

TEST(JsonEmitter, EmitJsonWalkerMatchesDumpAndKeepsIntegerLexemes) {
  // Parse a document whose integers exceed 2^53 — a double path would
  // corrupt them; the walker must re-emit the exact lexemes.
  const std::string text =
      R"({"seed": 9223372036854775809, "neg": -9007199254740995,)"
      R"( "d": 1.5, "rows": [1, 2, 3]})";
  const Json doc = Json::parse(text);
  for (int indent : {-1, 2}) {
    std::string streamed;
    JsonEmitter e(streamed, indent);
    emit_json(e, doc);
    EXPECT_EQ(streamed, doc.dump(indent));
  }
  EXPECT_NE(doc.dump().find("9223372036854775809"), std::string::npos);
}

TEST(JsonEmitter, FlushChunksConcatenateToTheExactDocument) {
  const Json doc = tricky_document();
  std::string buffer;
  JsonEmitter e(buffer, 2);
  std::string collected;
  std::size_t chunks = 0;
  e.set_flush(
      [&](std::string_view chunk) {
        collected.append(chunk);
        ++chunks;
      },
      /*threshold=*/16);
  emit_tricky(e);
  collected.append(buffer);  // tail below the threshold
  EXPECT_EQ(collected, doc.dump(2));
  EXPECT_GT(chunks, 1u);
  // The buffer high-water mark is bounded by threshold + one token, not
  // by the document size.
  EXPECT_LT(e.peak_buffer_bytes(), collected.size());
  EXPECT_LE(e.peak_buffer_bytes(), std::size_t{16} + 64);
  // bytes_emitted counts the flushed bytes; the sub-threshold tail is
  // still sitting in the buffer.
  EXPECT_EQ(e.bytes_emitted() + buffer.size(), collected.size());
}

// --- simulation fixtures --------------------------------------------

// A horizon with fault events, retries, degraded windows and nested
// allocator traces (mirrors test_trace_archive's eventful_run).
std::vector<WindowMetrics> eventful_run() {
  SimConfig cfg;
  cfg.windows = 5;
  cfg.arrivals_per_window_mean = 12.0;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.faults.scripted = {{1, /*leaf_level=*/true, 0, /*mttr_windows=*/2,
                          false},
                         {3, false, 9, 1, /*decommission=*/true}};
  cfg.retry.max_attempts = 3;
  cfg.allocator_deadline_seconds = 1e-9;
  EaAllocatorOptions options;
  options.nsga.population_size = 16;
  options.nsga.max_evaluations = 320;
  options.nsga.reference_divisions = 4;
  options.nsga.collect_trace = true;
  CloudSimulator sim(cfg, std::make_unique<Nsga3Allocator>(options));
  return sim.run(29);
}

// Admission-controlled horizon: the admission block columns go nonzero.
std::vector<WindowMetrics> admission_run() {
  SimConfig cfg;
  cfg.windows = 6;
  cfg.arrival_schedule = {14, 4};
  cfg.departure_probability = 0.2;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.scenario.vms = 0;
  cfg.max_admissions_per_window = 8;
  cfg.admission_queue_limit = 20;
  cfg.retry.max_attempts = 2;
  EaAllocatorOptions options;
  options.nsga.population_size = 16;
  options.nsga.max_evaluations = 320;
  options.nsga.reference_divisions = 4;
  CloudSimulator sim(cfg, std::make_unique<Nsga3TabuAllocator>(options));
  return sim.run(7);
}

// Sharded horizon: ShardRunStats flows into the trace's shard block.
std::vector<WindowMetrics> sharded_run() {
  SimConfig cfg;
  cfg.windows = 4;
  cfg.arrivals_per_window_mean = 10.0;
  cfg.scenario = ScenarioConfig::paper_scale(32, 2);
  ShardedAllocatorOptions options;
  options.shard_count = 2;
  options.threads = 1;
  options.suite.ea.nsga.population_size = 16;
  options.suite.ea.nsga.max_evaluations = 320;
  options.suite.ea.nsga.reference_divisions = 4;
  CloudSimulator sim(cfg, std::make_unique<ShardedAllocator>(options));
  return sim.run(11);
}

// Brokered multi-cloud horizon: per-provider rows land in the trace.
std::vector<WindowMetrics> brokered_run() {
  ScenarioConfig tiny;
  tiny.datacenters = 1;
  tiny.total_servers = 16;
  tiny.servers_per_leaf = 8;
  tiny.vms = 0;

  CloudMarketConfig market;
  ProviderConfig alpha;
  alpha.id = "alpha";
  alpha.scenario = tiny;
  alpha.pricing.billing = BillingModel::kOnDemand;
  ProviderConfig beta;
  beta.id = "beta";
  beta.scenario = tiny;
  beta.pricing.billing = BillingModel::kReserved;
  beta.pricing.reserved_multiplier = 0.6;
  market.providers = {alpha, beta};

  MultiCloudSimConfig cfg;
  cfg.windows = 6;
  cfg.arrival_schedule = {8, 6, 4};
  cfg.departure_probability = 0.1;
  cfg.retry.max_attempts = 3;
  cfg.market = market;
  cfg.request_shape = tiny;
  MultiCloudSimulator sim(cfg);
  return sim.run(13);
}

std::string canonical_sim_trace_text(
    const std::vector<WindowMetrics>& rows) {
  return sim_trace_to_json(rows).dump(2) + "\n";
}

// --- streaming writers ----------------------------------------------

TEST(SimTraceStreaming, FileIsByteIdenticalToTheTreeDump) {
  const std::vector<WindowMetrics> rows = eventful_run();
  ASSERT_GT(summarize(rows).fault_events, 0u);
  const std::string path = temp_path("iaas_trace_stream.json");
  write_sim_trace_json(rows, path);
  EXPECT_EQ(load_text(path), canonical_sim_trace_text(rows));
  std::filesystem::remove(path);
}

TEST(SimTraceStreaming, PerWindowSinkFlushesIncrementally) {
  SimConfig cfg;
  cfg.windows = 6;
  cfg.arrivals_per_window_mean = 8.0;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.faults.server_failure_probability = 0.1;
  cfg.faults.mttr_min_windows = 1;
  cfg.faults.mttr_max_windows = 2;
  cfg.retry.max_attempts = 2;
  EaAllocatorOptions options;
  options.nsga.population_size = 16;
  options.nsga.max_evaluations = 320;
  options.nsga.reference_divisions = 4;
  CloudSimulator sim(cfg, std::make_unique<Nsga3TabuAllocator>(options));

  const std::string path = temp_path("iaas_trace_incremental.json");
  SimTraceWriter writer(path);
  std::size_t observed = 0;
  std::size_t bytes_mid_run = 0;
  sim.set_window_sink([&](const WindowMetrics& row) {
    writer.append(row);
    ++observed;
    if (observed == 3) {
      // The first windows are already on disk while the run continues —
      // that is the whole point of the streaming path.
      bytes_mid_run = std::filesystem::file_size(path);
    }
  });
  const std::vector<WindowMetrics> rows = sim.run(17);
  writer.finish();

  EXPECT_EQ(observed, rows.size());
  EXPECT_EQ(writer.windows_written(), rows.size());
  EXPECT_GT(bytes_mid_run, 0u);
  EXPECT_LT(bytes_mid_run, writer.bytes_written());
  // Peak emission memory is one window, not the horizon.
  EXPECT_LT(writer.peak_buffer_bytes(), writer.bytes_written());
  EXPECT_EQ(load_text(path), canonical_sim_trace_text(rows));
  std::filesystem::remove(path);
}

TEST(SimTraceStreaming, EmptyHorizonStillFormsAValidDocument) {
  const std::string path = temp_path("iaas_trace_empty.json");
  {
    SimTraceWriter writer(path);
    writer.finish();
  }
  const std::vector<WindowMetrics> parsed =
      sim_trace_from_json(Json::parse(load_text(path)));
  EXPECT_TRUE(parsed.empty());
  std::filesystem::remove(path);
}

TEST(TraceScratch, ShrinksPastRetainThreshold) {
  std::string scratch;
  scratch.assign(kTraceScratchRetainBytes * 2, 'x');
  shrink_scratch(scratch);
  EXPECT_TRUE(scratch.empty());
  EXPECT_LT(scratch.capacity(), kTraceScratchRetainBytes);
  // A buffer within the retain threshold is left alone — its warm
  // capacity (and contents) survive for the next document.
  scratch.assign(512, 'y');
  const std::size_t warm = scratch.capacity();
  shrink_scratch(scratch);
  EXPECT_EQ(scratch.size(), 512u);
  EXPECT_EQ(scratch.capacity(), warm);
}

// --- binary round trips ---------------------------------------------

void expect_binary_roundtrip(const std::vector<WindowMetrics>& rows,
                             const std::string& tag) {
  SCOPED_TRACE(tag);
  const std::string path = temp_path("iaas_trace_" + tag + ".trc");
  write_binary_sim_trace(rows, path);
  ASSERT_TRUE(is_binary_trace_file(path));
  EXPECT_EQ(binary_trace_kind(path), BinaryTraceKind::kSimTrace);
  const std::vector<WindowMetrics> reloaded =
      read_binary_sim_trace(path);
  EXPECT_EQ(deterministic_fingerprint(reloaded),
            deterministic_fingerprint(rows));
  // Lossless beyond the fingerprint: the reloaded rows re-emit to the
  // exact canonical JSON text (wall clocks and all).
  EXPECT_EQ(canonical_sim_trace_text(reloaded),
            canonical_sim_trace_text(rows));
  // And the streaming binary writer produces the same file.
  const std::string streamed_path =
      temp_path("iaas_trace_" + tag + "_streamed.trc");
  {
    BinaryTraceWriter writer(streamed_path);
    for (const WindowMetrics& row : rows) {
      writer.append(row);
    }
    writer.finish();
    EXPECT_EQ(writer.windows_written(), rows.size());
  }
  EXPECT_EQ(load_text(streamed_path), load_text(path));
  std::filesystem::remove(path);
  std::filesystem::remove(streamed_path);
}

TEST(BinaryTrace, FaultedTraceRoundTrips) {
  const std::vector<WindowMetrics> rows = eventful_run();
  bool has_trace = false;
  for (const WindowMetrics& w : rows) {
    has_trace = has_trace || !w.allocator_trace.empty();
  }
  ASSERT_TRUE(has_trace);  // nested run traces must be exercised
  expect_binary_roundtrip(rows, "faulted");
}

TEST(BinaryTrace, AdmissionTraceRoundTrips) {
  const std::vector<WindowMetrics> rows = admission_run();
  const SimSummary summary = summarize(rows);
  ASSERT_GT(summary.admission_deferred, 0u);  // block present
  expect_binary_roundtrip(rows, "admission");
}

TEST(BinaryTrace, ShardedTraceRoundTrips) {
  const std::vector<WindowMetrics> rows = sharded_run();
  bool has_shards = false;
  for (const WindowMetrics& w : rows) {
    has_shards = has_shards || w.shard.shard_count > 0;
  }
  ASSERT_TRUE(has_shards);
  expect_binary_roundtrip(rows, "sharded");
}

TEST(BinaryTrace, BrokeredTraceRoundTrips) {
  const std::vector<WindowMetrics> rows = brokered_run();
  bool has_providers = false;
  for (const WindowMetrics& w : rows) {
    has_providers = has_providers || !w.providers.empty();
  }
  ASSERT_TRUE(has_providers);
  expect_binary_roundtrip(rows, "brokered");
}

// Strategic-consumer horizon: fairness/welfare columns in every
// non-empty window.
std::vector<WindowMetrics> strategic_run() {
  SimConfig cfg;
  cfg.windows = 4;
  cfg.arrivals_per_window_mean = 10.0;
  cfg.departure_probability = 0.15;
  cfg.scenario = ScenarioConfig::paper_scale(32, 2);
  cfg.scenario.vms = 0;
  cfg.scenario.consumers = 6;
  cfg.scenario.strategic.strategic_fraction = 0.5;
  cfg.scenario.strategic.profiles = default_strategy_profiles();
  EaAllocatorOptions options;
  options.nsga.population_size = 16;
  options.nsga.max_evaluations = 320;
  options.nsga.reference_divisions = 4;
  CloudSimulator sim(cfg, std::make_unique<Nsga3TabuAllocator>(options));
  return sim.run(23);
}

TEST(BinaryTrace, StrategicTraceRoundTrips) {
  const std::vector<WindowMetrics> rows = strategic_run();
  bool has_fairness = false;
  bool has_strategic = false;
  for (const WindowMetrics& w : rows) {
    has_fairness = has_fairness || w.fairness.consumers > 0;
    has_strategic = has_strategic || w.fairness.strategic_vms > 0;
  }
  ASSERT_TRUE(has_fairness);
  ASSERT_TRUE(has_strategic);
  expect_binary_roundtrip(rows, "strategic");
}

TEST(SimTraceJson, FairnessBlockRoundTripsThroughJson) {
  const std::vector<WindowMetrics> rows = strategic_run();
  const Json doc = sim_trace_to_json(rows);
  const Json& windows = doc.at("windows");
  bool any_block = false;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const Json& w = windows.at(i);
    if (rows[i].fairness.consumers == 0) {
      EXPECT_FALSE(w.contains("fairness"));  // absent, not zero-filled
      continue;
    }
    any_block = true;
    ASSERT_TRUE(w.contains("fairness"));
    const Json& f = w.at("fairness");
    EXPECT_EQ(static_cast<std::size_t>(f.at("consumers").as_number()),
              rows[i].fairness.consumers);
    EXPECT_DOUBLE_EQ(f.at("jain_index").as_number(),
                     rows[i].fairness.jain_index);
    EXPECT_DOUBLE_EQ(f.at("energy_cost").as_number(),
                     rows[i].fairness.energy_cost);
  }
  ASSERT_TRUE(any_block);
  const std::vector<WindowMetrics> reloaded = sim_trace_from_json(doc);
  EXPECT_EQ(deterministic_fingerprint(reloaded),
            deterministic_fingerprint(rows));
}

TEST(BinaryTrace, RunTraceWithHuge64BitSeedRoundTrips) {
  telemetry::RunTrace trace;
  trace.label = "huge-seed";
  trace.seed = (std::uint64_t{1} << 63) + 12345;  // > 2^53: a double
                                                  // path would corrupt it
  telemetry::GenerationRow row;
  row.generation = 1;
  row.evaluations = (std::uint64_t{1} << 53) + 7;
  row.front_size = 3;
  row.best_objectives = {1.0, 2.0, 3.0};
  row.seconds_evaluate = 0.25;
  trace.rows.push_back(row);

  // Through JSON (integer lexemes)...
  const telemetry::RunTrace via_json =
      trace_from_json(Json::parse(trace_to_json(trace).dump()));
  EXPECT_EQ(via_json.seed, trace.seed);
  EXPECT_EQ(via_json.rows[0].evaluations, trace.rows[0].evaluations);

  // ...and through the binary format.
  const std::string path = temp_path("iaas_trace_runtrace.trc");
  write_binary_run_trace(trace, path);
  EXPECT_EQ(binary_trace_kind(path), BinaryTraceKind::kRunTrace);
  const telemetry::RunTrace reloaded = read_binary_run_trace(path);
  EXPECT_EQ(reloaded.seed, trace.seed);
  EXPECT_EQ(reloaded.label, trace.label);
  ASSERT_EQ(reloaded.rows.size(), 1u);
  EXPECT_EQ(reloaded.rows[0].evaluations, trace.rows[0].evaluations);
  EXPECT_DOUBLE_EQ(reloaded.rows[0].seconds_evaluate, 0.25);
  EXPECT_EQ(trace_to_json(reloaded).dump(), trace_to_json(trace).dump());
  std::filesystem::remove(path);
}

TEST(BinaryTrace, MalformedInputThrows) {
  const std::string path = temp_path("iaas_trace_bad.trc");
  // Not a binary trace at all.
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"windows\": []}\n";
  }
  EXPECT_FALSE(is_binary_trace_file(path));
  EXPECT_THROW(binary_trace_kind(path), std::runtime_error);
  EXPECT_THROW(read_binary_sim_trace(path), std::runtime_error);

  // A valid trace truncated mid-stream loses its end marker.
  const std::vector<WindowMetrics> rows = admission_run();
  write_binary_sim_trace(rows, path);
  const std::string full = load_text(path);
  {
    std::ofstream out(path, std::ios::binary);
    out << full.substr(0, full.size() / 2);
  }
  EXPECT_TRUE(is_binary_trace_file(path));
  EXPECT_THROW(read_binary_sim_trace(path), std::runtime_error);

  // Kind confusion: a sim trace is not a run trace.
  write_binary_sim_trace(rows, path);
  EXPECT_THROW(read_binary_run_trace(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(BinaryTrace, CompactsRichTracesByFiveTimesOrMore) {
  const std::vector<WindowMetrics> rows = eventful_run();
  const std::string path = temp_path("iaas_trace_ratio.trc");
  write_binary_sim_trace(rows, path);
  const std::size_t binary_bytes = std::filesystem::file_size(path);
  const std::size_t json_bytes = canonical_sim_trace_text(rows).size();
  EXPECT_GE(json_bytes, binary_bytes * 5)
      << "json " << json_bytes << " vs binary " << binary_bytes;
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace iaas
