// Load (Eq. 25) and QoS (Eq. 24) models, including shape properties of
// the piecewise-exponential decay.
#include "model/load_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;

TEST(QosAtLoad, FlatBelowKnee) {
  EXPECT_DOUBLE_EQ(qos_at_load(0.0, 0.8, 0.95), 0.95);
  EXPECT_DOUBLE_EQ(qos_at_load(0.5, 0.8, 0.95), 0.95);
  EXPECT_DOUBLE_EQ(qos_at_load(0.8, 0.8, 0.95), 0.95);
}

TEST(QosAtLoad, ExponentialDecayAboveKnee) {
  const double q = qos_at_load(0.9, 0.8, 0.95);
  EXPECT_DOUBLE_EQ(q, 0.95 * std::exp((0.8 - 0.9) / 0.2));
  EXPECT_LT(q, 0.95);
}

TEST(QosAtLoad, ContinuousAtKnee) {
  const double below = qos_at_load(0.8, 0.8, 0.95);
  const double above = qos_at_load(0.8 + 1e-12, 0.8, 0.95);
  EXPECT_NEAR(below, above, 1e-9);
}

// Property sweep: QoS is non-increasing in load and stays in (0, max].
class QosMonotone : public ::testing::TestWithParam<double> {};

TEST_P(QosMonotone, NonIncreasingInLoad) {
  const double knee = GetParam();
  const double max_qos = 0.97;
  double prev = max_qos + 1.0;
  for (double load = 0.0; load <= 2.0; load += 0.01) {
    const double q = qos_at_load(load, knee, max_qos);
    EXPECT_LE(q, prev + 1e-15);
    EXPECT_GT(q, 0.0);
    EXPECT_LE(q, max_qos);
    prev = q;
  }
}

INSTANTIATE_TEST_SUITE_P(Knees, QosMonotone,
                         ::testing::Values(0.0, 0.3, 0.5, 0.7, 0.9, 0.99));

// Eq. 24 divides by (1 - L^M): a knee at exactly 1.0 used to produce
// inf/NaN in Release (the debug-only assert never fired there) and
// poison the Eq. 23 downtime cost.  The clamp must hold in every build
// mode.
TEST(QosAtLoad, KneeAtOneIsClampedNotSingular) {
  for (double load : {0.0, 0.5, 0.999, 1.0, 1.5}) {
    const double q = qos_at_load(load, 1.0, 0.95);
    EXPECT_TRUE(std::isfinite(q)) << "load " << load;
    // exp() may underflow to exactly 0 past the clamped knee — finite
    // and non-negative is the contract, never inf/NaN.
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 0.95);
  }
  // Below the (clamped) knee the plateau value survives intact.
  EXPECT_DOUBLE_EQ(qos_at_load(0.5, 1.0, 0.95), 0.95);
}

TEST(QosAtLoad, BadKneeValuesSanitized) {
  const double nan = std::nan("");
  // NaN and negative knees degrade to knee 0 (decay from the start)
  // instead of propagating NaN into the objective accumulators.
  EXPECT_TRUE(std::isfinite(qos_at_load(0.5, nan, 0.95)));
  EXPECT_TRUE(std::isfinite(qos_at_load(0.5, -0.3, 0.95)));
  EXPECT_DOUBLE_EQ(qos_at_load(0.5, -0.3, 0.95),
                   qos_at_load(0.5, 0.0, 0.95));
  // Knees above 1 clamp to just-under-1, same as exactly 1.
  EXPECT_DOUBLE_EQ(qos_at_load(1.2, 2.0, 0.95),
                   qos_at_load(1.2, 1.0, 0.95));
}

TEST(ComputeLoads, SumsDemandsOverCapacity) {
  const Instance inst = make_instance(
      1, 2, {10.0, 20.0, 40.0},
      {{2.0, 4.0, 8.0}, {3.0, 2.0, 4.0}, {5.0, 10.0, 20.0}});
  Placement p(3);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  Matrix<double> loads;
  compute_loads(inst, p, loads);
  EXPECT_DOUBLE_EQ(loads(0, 0), 0.5);   // (2+3)/10
  EXPECT_DOUBLE_EQ(loads(0, 1), 0.3);   // (4+2)/20
  EXPECT_DOUBLE_EQ(loads(0, 2), 0.3);   // (8+4)/40
  EXPECT_DOUBLE_EQ(loads(1, 0), 0.5);   // 5/10
  EXPECT_DOUBLE_EQ(loads(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(loads(1, 2), 0.5);
}

TEST(ComputeLoads, RejectedVmsContributeNothing) {
  const Instance inst =
      make_instance(1, 1, {10.0, 10.0, 10.0}, {{5.0, 5.0, 5.0}});
  const Placement p(1);  // rejected
  Matrix<double> loads;
  compute_loads(inst, p, loads);
  EXPECT_DOUBLE_EQ(loads(0, 0), 0.0);
}

TEST(ComputeLoads, ReusesBufferWithoutStaleData) {
  const Instance inst =
      make_instance(1, 2, {10.0, 10.0, 10.0}, {{5.0, 5.0, 5.0}});
  Placement p(1);
  p.assign(0, 0);
  Matrix<double> loads;
  compute_loads(inst, p, loads);
  EXPECT_DOUBLE_EQ(loads(0, 0), 0.5);
  p.assign(0, 1);
  compute_loads(inst, p, loads);  // same buffer, new placement
  EXPECT_DOUBLE_EQ(loads(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(loads(1, 0), 0.5);
}

TEST(ComputeQos, UsesPerServerKneeAndCeiling) {
  Instance inst = make_instance(1, 1, {10.0, 10.0, 10.0},
                                {{9.0, 1.0, 1.0}});
  Placement p(1);
  p.assign(0, 0);
  Matrix<double> loads;
  Matrix<double> qos;
  compute_loads(inst, p, loads);
  compute_qos(inst, loads, qos);
  // Helper servers: knee 0.8, ceiling 0.95. CPU load 0.9 -> degraded.
  EXPECT_LT(qos(0, 0), 0.95);
  // RAM/disk load 0.1 -> at ceiling.
  EXPECT_DOUBLE_EQ(qos(0, 1), 0.95);
  EXPECT_DOUBLE_EQ(qos(0, 2), 0.95);
}

}  // namespace
}  // namespace iaas
