// Reconfiguration plans and the cyclic time-window simulator, including
// the fault-injection / graceful-degradation battery: determinism across
// thread counts, rack-outage recovery, deadline degradation, and the
// retry-queue conservation laws.
#include <gtest/gtest.h>

#include <stdexcept>

#include "algo/heuristics.h"
#include "algo/nsga_allocators.h"
#include "algo/round_robin.h"
#include "common/telemetry.h"
#include "sim/reconfiguration_plan.h"
#include "sim/simulator.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;

TEST(ReconfigurationPlan, DiffClassifiesActions) {
  Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  Placement from(4);
  from.assign(0, 0);  // stays
  from.assign(1, 1);  // migrates to 2
  from.assign(2, 2);  // stops
  // VM 3 was not running      -> boots
  Placement to(4);
  to.assign(0, 0);
  to.assign(1, 2);
  to.assign(3, 1);

  const ReconfigurationPlan plan = make_plan(inst, from, to);
  EXPECT_EQ(plan.actions.size(), 3u);
  EXPECT_EQ(plan.boots(), 1u);
  EXPECT_EQ(plan.migrations(), 1u);
  EXPECT_EQ(plan.stops(), 1u);
  // Helper migration cost is 2.0/VM; only VM 1 migrates.
  EXPECT_DOUBLE_EQ(plan.migration_cost(), 2.0);
}

TEST(ReconfigurationPlan, IdenticalPlacementsEmptyPlan) {
  Instance inst =
      make_instance(1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  Placement p(1);
  p.assign(0, 1);
  const ReconfigurationPlan plan = make_plan(inst, p, p);
  EXPECT_TRUE(plan.actions.empty());
  EXPECT_DOUBLE_EQ(plan.migration_cost(), 0.0);
}

TEST(ReconfigurationPlan, SummaryMentionsCounts) {
  Instance inst =
      make_instance(1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  Placement from(1);
  Placement to(1);
  to.assign(0, 0);
  const std::string s = make_plan(inst, from, to).summary();
  EXPECT_NE(s.find("1 boots"), std::string::npos);
  EXPECT_NE(s.find("0 migrations"), std::string::npos);
}

TEST(PoissonSample, SmallMeanMatchesMoments) {
  Rng rng(7);
  const double mean = 20.0;
  const std::size_t n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(poisson_sample(mean, rng));
    sum += x;
    sum_sq += x * x;
  }
  const double sample_mean = sum / static_cast<double>(n);
  const double sample_var =
      sum_sq / static_cast<double>(n) - sample_mean * sample_mean;
  // Poisson: mean == variance == lambda.
  EXPECT_NEAR(sample_mean, mean, 0.15);
  EXPECT_NEAR(sample_var, mean, 1.5);
}

TEST(PoissonSample, LargeMeanNoUnderflow) {
  // exp(-1500) underflows to 0; the raw Knuth loop would then only stop
  // when its running product underflowed too, returning garbage (biased
  // low by orders of magnitude).  The chunked sampler must stay on the
  // Poisson moments.
  Rng rng(11);
  const double mean = 1500.0;
  const std::size_t n = 2000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(poisson_sample(mean, rng));
    sum += x;
    sum_sq += x * x;
  }
  const double sample_mean = sum / static_cast<double>(n);
  const double sample_var =
      sum_sq / static_cast<double>(n) - sample_mean * sample_mean;
  EXPECT_NEAR(sample_mean, mean, mean * 0.03);
  EXPECT_NEAR(sample_var, mean, mean * 0.15);
}

TEST(PoissonSample, EdgeCasesAndDeterminism) {
  Rng rng(3);
  EXPECT_EQ(poisson_sample(0.0, rng), 0u);
  EXPECT_EQ(poisson_sample(-5.0, rng), 0u);
  Rng a(42);
  Rng b(42);
  for (double mean : {0.5, 30.0, 600.0, 1200.0}) {
    EXPECT_EQ(poisson_sample(mean, a), poisson_sample(mean, b));
  }
}

// compact_requests: VM removal with constraint-group remapping (runs on
// every departure/rejection window).
TEST(CompactRequests, RemapsSurvivingGroupIndices) {
  RequestSet requests;
  for (int i = 0; i < 5; ++i) {
    requests.vms.push_back(test::make_vm({1.0, 1.0, 1.0}));
  }
  requests.constraints = {{RelationKind::kSameServer, {1, 3, 4}},
                          {RelationKind::kDifferentServers, {0, 2}}};
  Placement placement(5);
  for (std::uint32_t k = 0; k < 5; ++k) {
    placement.assign(k, static_cast<std::int32_t>(k));
  }
  // Drop VMs 0 and 3: survivors 1,2,4 become 0,1,2.
  compact_requests(requests, placement, {0, 1, 1, 0, 1});

  ASSERT_EQ(requests.vms.size(), 3u);
  ASSERT_EQ(requests.constraints.size(), 1u);
  // {1,3,4} loses member 3 and remaps to the new indices of 1 and 4.
  EXPECT_EQ(requests.constraints[0].kind, RelationKind::kSameServer);
  EXPECT_EQ(requests.constraints[0].vms, (std::vector<std::uint32_t>{0, 2}));
  // Surviving genes keep their server assignments, in survivor order.
  ASSERT_EQ(placement.vm_count(), 3u);
  EXPECT_EQ(placement.server_of(0), 1);
  EXPECT_EQ(placement.server_of(1), 2);
  EXPECT_EQ(placement.server_of(2), 4);
}

TEST(CompactRequests, GroupsBelowTwoMembersAreDropped) {
  RequestSet requests;
  for (int i = 0; i < 4; ++i) {
    requests.vms.push_back(test::make_vm({1.0, 1.0, 1.0}));
  }
  requests.constraints = {{RelationKind::kDifferentServers, {0, 1}},
                          {RelationKind::kSameDatacenter, {2, 3}}};
  Placement placement(4);
  for (std::uint32_t k = 0; k < 4; ++k) {
    placement.assign(k, 0);
  }
  // Drop VM 1: the {0,1} pair shrinks to one member and must vanish;
  // {2,3} survives fully remapped.
  compact_requests(requests, placement, {1, 0, 1, 1});
  ASSERT_EQ(requests.constraints.size(), 1u);
  EXPECT_EQ(requests.constraints[0].kind, RelationKind::kSameDatacenter);
  EXPECT_EQ(requests.constraints[0].vms, (std::vector<std::uint32_t>{1, 2}));
}

TEST(CompactRequests, DropEverythingLeavesEmptySet) {
  RequestSet requests;
  requests.vms.push_back(test::make_vm({1.0, 1.0, 1.0}));
  requests.constraints = {};
  Placement placement(1);
  placement.assign(0, 0);
  compact_requests(requests, placement, {0});
  EXPECT_TRUE(requests.vms.empty());
  EXPECT_EQ(placement.vm_count(), 0u);
}

SimConfig small_sim() {
  SimConfig cfg;
  cfg.windows = 6;
  cfg.arrivals_per_window_mean = 8.0;
  cfg.departure_probability = 0.15;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  return cfg;
}

TEST(CloudSimulator, RunsFullHorizon) {
  CloudSimulator sim(small_sim(), std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(1);
  ASSERT_EQ(metrics.size(), 6u);
  for (std::size_t w = 0; w < metrics.size(); ++w) {
    EXPECT_EQ(metrics[w].window, w);
    EXPECT_GE(metrics[w].solve_seconds, 0.0);
  }
}

TEST(CloudSimulator, DeterministicPerSeed) {
  CloudSimulator a(small_sim(), std::make_unique<RoundRobinAllocator>());
  CloudSimulator b(small_sim(), std::make_unique<RoundRobinAllocator>());
  const auto ma = a.run(42);
  const auto mb = b.run(42);
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t w = 0; w < ma.size(); ++w) {
    EXPECT_EQ(ma[w].arrived, mb[w].arrived);
    EXPECT_EQ(ma[w].departed, mb[w].departed);
    EXPECT_EQ(ma[w].running, mb[w].running);
    EXPECT_EQ(ma[w].migrations, mb[w].migrations);
    EXPECT_DOUBLE_EQ(ma[w].objectives.aggregate(),
                     mb[w].objectives.aggregate());
  }
}

TEST(CloudSimulator, RunningPopulationBalances) {
  CloudSimulator sim(small_sim(), std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(7);
  std::size_t running = 0;
  for (const WindowMetrics& w : metrics) {
    // After the window: previous running - departed + arrived - rejected.
    const std::size_t expected =
        running - w.departed + w.arrived - w.rejected;
    EXPECT_EQ(w.running, expected) << "window " << w.window;
    running = w.running;
  }
}

TEST(CloudSimulator, FirstWindowBootsEverythingPlaced) {
  SimConfig cfg = small_sim();
  cfg.departure_probability = 0.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(3);
  const WindowMetrics& w0 = metrics.front();
  EXPECT_EQ(w0.boots, w0.arrived - w0.rejected);
  EXPECT_EQ(w0.migrations, 0u);
}

TEST(CloudSimulator, ZeroArrivalsProduceEmptyWindows) {
  SimConfig cfg = small_sim();
  cfg.arrivals_per_window_mean = 0.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(5);
  for (const WindowMetrics& w : metrics) {
    EXPECT_EQ(w.arrived, 0u);
    EXPECT_EQ(w.running, 0u);
    EXPECT_DOUBLE_EQ(w.objectives.aggregate(), 0.0);
  }
}

TEST(CloudSimulator, DrivesTheHybridAllocatorEndToEnd) {
  SimConfig cfg = small_sim();
  cfg.windows = 3;
  cfg.arrivals_per_window_mean = 6.0;
  EaAllocatorOptions options;
  options.nsga.population_size = 16;
  options.nsga.max_evaluations = 320;
  options.nsga.reference_divisions = 4;
  CloudSimulator sim(cfg, std::make_unique<Nsga3TabuAllocator>(options));
  const auto metrics = sim.run(23);
  ASSERT_EQ(metrics.size(), 3u);
  std::size_t running = 0;
  for (const WindowMetrics& w : metrics) {
    const std::size_t expected =
        running - w.departed + w.arrived - w.rejected;
    EXPECT_EQ(w.running, expected);
    running = w.running;
  }
}

TEST(CloudSimulator, FailureInjectionDisplacesVms) {
  SimConfig cfg = small_sim();
  cfg.windows = 12;
  cfg.server_failure_probability = 0.15;
  cfg.departure_probability = 0.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(13);
  std::size_t total_failures = 0;
  std::size_t total_displaced = 0;
  for (const WindowMetrics& w : metrics) {
    total_failures += w.failed_servers;
    total_displaced += w.displaced_vms;
  }
  EXPECT_GT(total_failures, 0u);
  EXPECT_GT(total_displaced, 0u);
}

TEST(CloudSimulator, NoFailuresWhenProbabilityZero) {
  SimConfig cfg = small_sim();
  cfg.server_failure_probability = 0.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  for (const WindowMetrics& w : sim.run(17)) {
    EXPECT_EQ(w.failed_servers, 0u);
    EXPECT_EQ(w.displaced_vms, 0u);
  }
}

TEST(CloudSimulator, FailuresForceMigrationsOffDeadServers) {
  // With certain failure of many servers, surviving VMs must migrate.
  SimConfig cfg = small_sim();
  cfg.windows = 4;
  cfg.server_failure_probability = 0.3;
  cfg.departure_probability = 0.0;
  cfg.arrivals_per_window_mean = 10.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(19);
  std::size_t migrations = 0;
  for (const WindowMetrics& w : metrics) {
    migrations += w.migrations;
  }
  EXPECT_GT(migrations, 0u);
}

TEST(CloudSimulator, DeparturesShrinkPlatform) {
  SimConfig cfg = small_sim();
  cfg.windows = 30;
  cfg.departure_probability = 0.5;
  cfg.arrivals_per_window_mean = 2.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(11);
  // With heavy churn the platform stays small — sanity bound.
  for (const WindowMetrics& w : metrics) {
    EXPECT_LT(w.running, 60u);
  }
  std::size_t total_departed = 0;
  for (const WindowMetrics& w : metrics) {
    total_departed += w.departed;
  }
  EXPECT_GT(total_departed, 0u);
}

// --- arrival schedule wrap-around (the single shared arrival rule) ---

TEST(WindowArrivals, ScheduleWrapAndPoissonFallbackTable) {
  struct Case {
    std::vector<std::size_t> schedule;
    std::size_t window;
    std::size_t expected;  // ignored for the Poisson rows
    bool poisson;
  };
  const Case cases[] = {
      {{5, 7, 9}, 0, 5, false},
      {{5, 7, 9}, 2, 9, false},
      {{5, 7, 9}, 3, 5, false},    // wraps: window % schedule length
      {{5, 7, 9}, 7, 7, false},    // 7 % 3 == 1
      {{5, 7, 9}, 3002, 9, false}, // far beyond the schedule
      {{4}, 9999, 4, false},       // single-entry schedule is constant
      {{}, 0, 0, true},            // empty schedule: Poisson fallback
      {{}, 17, 0, true},
  };
  for (const Case& c : cases) {
    SimConfig cfg;
    cfg.arrival_schedule = c.schedule;
    cfg.arrivals_per_window_mean = 6.0;
    Rng rng(21);
    const std::size_t got = window_arrivals(cfg, c.window, rng);
    if (c.poisson) {
      // The fallback must consume the rng and match a fresh Poisson draw.
      Rng twin(21);
      EXPECT_EQ(got, poisson_sample(6.0, twin)) << "window " << c.window;
    } else {
      EXPECT_EQ(got, c.expected) << "window " << c.window;
    }
  }
  // Zero-mean Poisson boundary: no draw, no arrivals, for any window.
  SimConfig cfg;
  cfg.arrivals_per_window_mean = 0.0;
  Rng rng(3);
  EXPECT_EQ(window_arrivals(cfg, 0, rng), 0u);
  EXPECT_EQ(window_arrivals(cfg, 1000, rng), 0u);
}

// --- compact_requests property test (randomised) ---

TEST(CompactRequests, RandomisedInvariantsHold) {
  Rng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = 1 + rng.uniform_index(12);
    RequestSet requests;
    Placement placement(n);
    for (std::size_t k = 0; k < n; ++k) {
      VmRequest vm = test::make_vm({1.0, 1.0, 1.0});
      vm.migration_cost = static_cast<double>(k);  // identity tag
      requests.vms.push_back(vm);
      if (rng.bernoulli(0.7)) {
        placement.assign(k, static_cast<std::int32_t>(rng.uniform_index(4)));
      }
    }
    // Random overlapping groups.
    const std::size_t groups = rng.uniform_index(4);
    for (std::size_t c = 0; c < groups; ++c) {
      std::vector<std::uint32_t> members;
      for (std::uint32_t k = 0; k < n; ++k) {
        if (rng.bernoulli(0.4)) {
          members.push_back(k);
        }
      }
      if (members.size() >= 2) {
        requests.constraints.push_back(
            {RelationKind::kSameDatacenter, std::move(members)});
      }
    }
    std::vector<char> keep(n, 1);
    for (std::size_t k = 0; k < n; ++k) {
      keep[k] = rng.bernoulli(0.6) ? 1 : 0;
    }

    // Expected survivor identities, in order.
    std::vector<double> expected_tags;
    std::vector<std::int32_t> expected_genes;
    for (std::size_t k = 0; k < n; ++k) {
      if (keep[k] != 0) {
        expected_tags.push_back(requests.vms[k].migration_cost);
        expected_genes.push_back(placement.server_of(k));
      }
    }
    compact_requests(requests, placement, keep);

    // Survivors keep identity, order, and server assignment.
    ASSERT_EQ(requests.vms.size(), expected_tags.size());
    ASSERT_EQ(placement.vm_count(), expected_tags.size());
    for (std::size_t k = 0; k < requests.vms.size(); ++k) {
      EXPECT_DOUBLE_EQ(requests.vms[k].migration_cost, expected_tags[k]);
      EXPECT_EQ(placement.server_of(k), expected_genes[k]);
    }
    // No dangling group members: every index in range, no group < 2, and
    // no member referring to a dropped VM (indices are remapped, so any
    // index >= survivor count would be a resurrection).
    for (const PlacementConstraint& c : requests.constraints) {
      EXPECT_GE(c.vms.size(), 2u);
      for (std::uint32_t m : c.vms) {
        EXPECT_LT(m, requests.vms.size());
      }
    }
  }
}

// --- determinism battery ---

std::uint64_t battery_fingerprint(std::size_t threads, std::uint64_t seed,
                                  bool warm_front = false) {
  SimConfig cfg;
  cfg.warm_start_front = warm_front;
  cfg.windows = 4;
  cfg.arrivals_per_window_mean = 6.0;
  cfg.departure_probability = 0.10;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.faults.server_failure_probability = 0.08;
  cfg.faults.leaf_failure_probability = 0.10;
  cfg.faults.mttr_min_windows = 1;
  cfg.faults.mttr_max_windows = 3;
  cfg.faults.decommission_probability = 0.10;
  cfg.retry.max_attempts = 3;
  EaAllocatorOptions options;
  options.nsga.population_size = 16;
  options.nsga.max_evaluations = 320;
  options.nsga.reference_divisions = 4;
  options.nsga.collect_trace = true;
  options.nsga.threads = threads;
  CloudSimulator sim(cfg, std::make_unique<Nsga3TabuAllocator>(options));
  return deterministic_fingerprint(sim.run(seed));
}

TEST(SimDeterminism, FingerprintBitIdenticalAcrossThreadCounts) {
  // Failures, retries and the EA hybrid all enabled: the full window
  // pipeline must replay bit-identically at any worker count.
  const std::uint64_t serial = battery_fingerprint(1, 5);
  EXPECT_EQ(battery_fingerprint(2, 5), serial);
  EXPECT_EQ(battery_fingerprint(4, 5), serial);
  // Re-running the serial config reproduces it exactly; a different seed
  // must diverge (the digest actually sees the run).
  EXPECT_EQ(battery_fingerprint(1, 5), serial);
  EXPECT_NE(battery_fingerprint(1, 6), serial);
}

TEST(SimDeterminism, WarmStartFrontFingerprintBitIdenticalAcrossThreads) {
  // Carrying the previous window's Pareto front into the next EA run
  // adds a cross-window feedback path; it must stay bit-deterministic
  // at any worker count, and must actually change the trajectory
  // relative to cold starts (the carried front is not a no-op).
  const std::uint64_t warm = battery_fingerprint(1, 5, /*warm_front=*/true);
  EXPECT_EQ(battery_fingerprint(2, 5, true), warm);
  EXPECT_EQ(battery_fingerprint(4, 5, true), warm);
  EXPECT_NE(battery_fingerprint(1, 6, true), warm);
  EXPECT_NE(battery_fingerprint(1, 5, false), warm);
}

TEST(SimDeterminism, FingerprintSensitiveToFaultHistory) {
  SimConfig cfg;
  cfg.windows = 5;
  cfg.arrivals_per_window_mean = 5.0;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  CloudSimulator plain(cfg, std::make_unique<RoundRobinAllocator>());
  cfg.faults.scripted = {{2, true, 0, 2, false}};
  CloudSimulator faulted(cfg, std::make_unique<RoundRobinAllocator>());
  EXPECT_NE(deterministic_fingerprint(plain.run(9)),
            deterministic_fingerprint(faulted.run(9)));
}

// --- rack outage: eviction, re-placement, queue drain ---

TEST(CloudSimulator, RackOutageEvictsAndRetryQueueDrains) {
  SimConfig cfg;
  cfg.windows = 10;
  cfg.departure_probability = 0.0;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  // Load the platform hard for three windows, then stop arrivals so the
  // drain is observable; rack 0 (half the fleet) dies at window 2 for
  // MTTR=3 windows (down 2-4, repaired at 5).
  cfg.arrival_schedule = {35, 35, 35, 0, 0, 0, 0, 0, 0, 0};
  cfg.faults.scripted = {{/*window=*/2, /*leaf_level=*/true, /*index=*/0,
                          /*mttr_windows=*/3, /*decommission=*/false}};
  cfg.retry.max_attempts = 6;
  cfg.retry.backoff_base_windows = 1;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(31);
  ASSERT_EQ(metrics.size(), 10u);

  const WindowMetrics& outage = metrics[2];
  EXPECT_EQ(outage.failed_servers, 8u);
  EXPECT_GT(outage.displaced_vms, 0u);   // VMs were hosted on the rack
  EXPECT_GT(outage.evicted, 0u);         // half-capacity cannot hold all
  // Every hosted VM left the dead rack the same window it failed.
  for (const WindowMetrics& w : metrics) {
    EXPECT_EQ(w.vms_on_down_servers, 0u) << "window " << w.window;
  }
  // The rack returns as one at window 5.
  EXPECT_EQ(metrics[5].repaired_servers, 8u);
  EXPECT_EQ(metrics[5].failed_servers, 0u);
  // Evicted VMs re-enter and the queue drains within MTTR + 2 windows of
  // the outage (by window 2 + 3 + 2 = 7).
  std::size_t total_retried = 0;
  for (const WindowMetrics& w : metrics) {
    total_retried += w.retried;
  }
  EXPECT_GT(total_retried, 0u);
  for (std::size_t w = 7; w < metrics.size(); ++w) {
    EXPECT_EQ(metrics[w].retry_queue_depth, 0u) << "window " << w;
  }
  const SimSummary summary = summarize(metrics);
  EXPECT_GT(summary.fault_events, 0u);
  EXPECT_GE(summary.evicted, outage.evicted);
}

// --- graceful degradation: deadline budget and fallback chain ---

TEST(CloudSimulator, TinyDeadlineDegradesToBestEffort) {
  SimConfig cfg;
  cfg.windows = 2;
  cfg.arrivals_per_window_mean = 5.0;
  cfg.departure_probability = 0.0;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  // Any real solve exceeds 1 ns, so the EA always truncates at its first
  // generation boundary — deterministically "best front so far".
  cfg.allocator_deadline_seconds = 1e-9;
  EaAllocatorOptions options;
  options.nsga.population_size = 16;
  options.nsga.max_evaluations = 320;
  options.nsga.reference_divisions = 4;
  CloudSimulator sim(cfg, std::make_unique<Nsga3Allocator>(options));
  const auto metrics = sim.run(41);
  const SimSummary summary = summarize(metrics);
  EXPECT_GT(summary.degraded_windows, 0u);
  for (const WindowMetrics& w : metrics) {
    if (w.arrived > 0 || w.running > 0) {
      EXPECT_EQ(w.degrade, DegradeLevel::kBestEffort) << "window "
                                                      << w.window;
      EXPECT_TRUE(w.fallback_algorithm.empty());
    }
  }
}

TEST(CloudSimulator, HardDeadlineOverrunServedByFallback) {
  SimConfig cfg;
  cfg.windows = 3;
  cfg.arrivals_per_window_mean = 5.0;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  // Hard ceiling of 1 ns: every primary call overruns it, so the greedy
  // fallback serves every window — a forced overrun must not lose the
  // window, it must degrade it.
  cfg.allocator_deadline_seconds = 1e-9;
  cfg.deadline_hard_factor = 1.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(43);
  std::size_t degraded = 0;
  for (const WindowMetrics& w : metrics) {
    if (w.arrived == 0 && w.running == 0) {
      continue;
    }
    EXPECT_EQ(w.degrade, DegradeLevel::kFallback);
    EXPECT_EQ(w.fallback_algorithm, "FirstFitDecreasing");
    ++degraded;
  }
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(summarize(metrics).degraded_windows, degraded);
}

class ThrowingAllocator : public Allocator {
 public:
  [[nodiscard]] std::string name() const override { return "Throwing"; }
  AllocationResult allocate(const Instance&, std::uint64_t) override {
    throw std::runtime_error("allocator blew up");
  }
};

TEST(CloudSimulator, ThrowingAllocatorFallsBackAndBalances) {
  SimConfig cfg;
  cfg.windows = 4;
  cfg.arrivals_per_window_mean = 6.0;
  cfg.departure_probability = 0.10;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  CloudSimulator sim(cfg, std::make_unique<ThrowingAllocator>());
  const auto metrics = sim.run(47);
  std::size_t running = 0;
  for (const WindowMetrics& w : metrics) {
    if (w.arrived > 0 || running > 0) {
      EXPECT_EQ(w.degrade, DegradeLevel::kFallback);
      EXPECT_EQ(w.fallback_algorithm, "FirstFitDecreasing");
    }
    const std::size_t expected =
        running - w.departed + w.arrived + w.retried - w.rejected;
    EXPECT_EQ(w.running, expected) << "window " << w.window;
    running = w.running;
  }
}

TEST(CloudSimulator, CustomFallbackAllocatorIsUsed) {
  SimConfig cfg;
  cfg.windows = 2;
  cfg.arrivals_per_window_mean = 4.0;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  CloudSimulator sim(cfg, std::make_unique<ThrowingAllocator>(),
                     std::make_unique<BestFitAllocator>());
  for (const WindowMetrics& w : sim.run(53)) {
    if (w.arrived > 0 || w.running > 0) {
      EXPECT_EQ(w.fallback_algorithm, "BestFit");
    }
  }
}

// --- retry queue conservation laws under sustained overload ---

TEST(CloudSimulator, RetryConservationUnderOverload) {
  SimConfig cfg;
  cfg.windows = 12;
  cfg.arrivals_per_window_mean = 20.0;  // deliberately over capacity
  cfg.departure_probability = 0.10;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.retry.max_attempts = 3;
  cfg.retry.backoff_base_windows = 1;
  cfg.retry.backoff_cap_windows = 4;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(61);

  std::size_t running = 0;
  std::size_t depth = 0;
  std::size_t offered_total = 0;
  std::size_t retried_total = 0;
  for (const WindowMetrics& w : metrics) {
    // Population balance now includes re-entries.
    const std::size_t expected_running =
        running - w.departed + w.arrived + w.retried - w.rejected;
    EXPECT_EQ(w.running, expected_running) << "window " << w.window;
    running = w.running;
    // Queue balance: what leaves is retried, what enters is this
    // window's non-permanent rejections.
    ASSERT_GE(w.rejected, w.permanently_rejected);
    const std::size_t offered = w.rejected - w.permanently_rejected;
    EXPECT_EQ(w.retry_queue_depth, depth - w.retried + offered)
        << "window " << w.window;
    depth = w.retry_queue_depth;
    offered_total += offered;
    retried_total += w.retried;
    // A VM re-enters only after it was queued: no resurrection from
    // nothing (cumulative retried never exceeds cumulative offers).
    EXPECT_LE(retried_total, offered_total);
  }
  // End-of-horizon conservation: every queued VM either re-entered or is
  // still waiting.
  EXPECT_EQ(offered_total, retried_total + depth);
  EXPECT_GT(retried_total, 0u);
  const SimSummary summary = summarize(metrics);
  EXPECT_EQ(summary.retried, retried_total);
  EXPECT_GT(summary.permanently_rejected, 0u);
}

// --- admission queue ---

TEST(CloudSimulator, AdmissionQueueDefersAndConservesArrivals) {
  SimConfig cfg;
  cfg.windows = 10;
  cfg.departure_probability = 0.15;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.arrival_schedule = {14, 2};  // bursts against a flat budget
  cfg.max_admissions_per_window = 6;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(23);

  std::size_t running = 0;
  std::size_t arrived_total = 0;
  std::size_t admitted_total = 0;
  std::size_t deferred_total = 0;
  for (const WindowMetrics& w : metrics) {
    // In admission mode the instance only ever sees admitted VMs: the
    // population balance replaces `arrived` with `admitted`.
    EXPECT_EQ(w.running,
              running - w.departed + w.admitted + w.retried - w.rejected)
        << "window " << w.window;
    running = w.running;
    EXPECT_EQ(w.admission_dropped, 0u);  // no cap -> defer, never shed
    arrived_total += w.arrived;
    admitted_total += w.admitted;
    deferred_total += w.admission_deferred;
  }
  // Burst windows overflow the budget; every overflow VM waits rather
  // than vanishing: arrivals = admissions + final backlog.
  EXPECT_GT(deferred_total, 0u);
  EXPECT_EQ(arrived_total,
            admitted_total + metrics.back().admission_queue_depth);
  const SimSummary summary = summarize(metrics);
  EXPECT_EQ(summary.admission_deferred, deferred_total);
  EXPECT_EQ(summary.admission_dropped, 0u);
}

TEST(CloudSimulator, AdmissionQueueCapShedsWholeUnits) {
  SimConfig cfg;
  cfg.windows = 8;
  cfg.departure_probability = 0.0;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.arrival_schedule = {20};
  cfg.max_admissions_per_window = 4;
  cfg.admission_queue_limit = 10;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(29);

  std::size_t arrived_total = 0;
  std::size_t admitted_total = 0;
  std::size_t dropped_total = 0;
  for (const WindowMetrics& w : metrics) {
    EXPECT_LE(w.admission_queue_depth, cfg.admission_queue_limit)
        << "window " << w.window;
    arrived_total += w.arrived;
    admitted_total += w.admitted;
    dropped_total += w.admission_dropped;
  }
  EXPECT_GT(dropped_total, 0u);  // 20/window against 4 admitted must shed
  EXPECT_EQ(arrived_total, admitted_total + dropped_total +
                               metrics.back().admission_queue_depth);
  EXPECT_EQ(summarize(metrics).admission_dropped, dropped_total);
}

TEST(CloudSimulator, OversizedUnitAtQueueHeadStillMakesProgress) {
  // Every arrival joins a 5-6 VM constraint group while the per-window
  // budget is 3: each unit is bigger than the whole budget.  The head
  // unit must be admitted alone (whole units never split), so the queue
  // keeps draining instead of deadlocking.
  SimConfig cfg;
  cfg.windows = 10;
  cfg.departure_probability = 0.2;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.scenario.constrained_fraction = 1.0;
  cfg.scenario.group_size_min = 5;
  cfg.scenario.group_size_max = 6;
  cfg.arrival_schedule = {6};
  cfg.max_admissions_per_window = 3;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(31);

  std::size_t backlog = 0;
  bool oversized_admitted = false;
  for (const WindowMetrics& w : metrics) {
    if (backlog + w.arrived > 0) {
      EXPECT_GT(w.admitted, 0u) << "stalled at window " << w.window;
    }
    oversized_admitted =
        oversized_admitted || w.admitted > cfg.max_admissions_per_window;
    backlog = w.admission_queue_depth;
  }
  // The oversized arm actually fired: some window admitted a unit
  // larger than the nominal budget.
  EXPECT_TRUE(oversized_admitted);
}

#if IAAS_TELEMETRY
TEST(CloudSimulator, TelemetryCountersMeterTheLifecycle) {
  telemetry::Registry::global().reset();
  SimConfig cfg;
  cfg.windows = 8;
  cfg.arrivals_per_window_mean = 15.0;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.faults.scripted = {{1, true, 0, 2, false}};
  cfg.retry.max_attempts = 3;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const SimSummary summary = summarize(sim.run(67));

  const telemetry::CounterBlock counters =
      telemetry::Registry::global().counters();
  EXPECT_EQ(counters[telemetry::Counter::kSimFaultEvents],
            summary.fault_events);
  EXPECT_EQ(counters[telemetry::Counter::kSimEvictions], summary.evicted);
  EXPECT_EQ(counters[telemetry::Counter::kSimRetries], summary.retried);
  EXPECT_EQ(counters[telemetry::Counter::kSimPermanentRejections],
            summary.permanently_rejected);
  EXPECT_EQ(counters[telemetry::Counter::kSimDegradedWindows],
            summary.degraded_windows);
  const auto seconds = telemetry::Registry::global().phase_seconds();
  EXPECT_GT(seconds[static_cast<std::size_t>(telemetry::Phase::kSimWindow)],
            0.0);
}
#endif  // IAAS_TELEMETRY

}  // namespace
}  // namespace iaas
