// Reconfiguration plans and the cyclic time-window simulator.
#include <gtest/gtest.h>

#include "algo/nsga_allocators.h"
#include "algo/round_robin.h"
#include "sim/reconfiguration_plan.h"
#include "sim/simulator.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;

TEST(ReconfigurationPlan, DiffClassifiesActions) {
  Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  Placement from(4);
  from.assign(0, 0);  // stays
  from.assign(1, 1);  // migrates to 2
  from.assign(2, 2);  // stops
  // VM 3 was not running      -> boots
  Placement to(4);
  to.assign(0, 0);
  to.assign(1, 2);
  to.assign(3, 1);

  const ReconfigurationPlan plan = make_plan(inst, from, to);
  EXPECT_EQ(plan.actions.size(), 3u);
  EXPECT_EQ(plan.boots(), 1u);
  EXPECT_EQ(plan.migrations(), 1u);
  EXPECT_EQ(plan.stops(), 1u);
  // Helper migration cost is 2.0/VM; only VM 1 migrates.
  EXPECT_DOUBLE_EQ(plan.migration_cost(), 2.0);
}

TEST(ReconfigurationPlan, IdenticalPlacementsEmptyPlan) {
  Instance inst =
      make_instance(1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  Placement p(1);
  p.assign(0, 1);
  const ReconfigurationPlan plan = make_plan(inst, p, p);
  EXPECT_TRUE(plan.actions.empty());
  EXPECT_DOUBLE_EQ(plan.migration_cost(), 0.0);
}

TEST(ReconfigurationPlan, SummaryMentionsCounts) {
  Instance inst =
      make_instance(1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  Placement from(1);
  Placement to(1);
  to.assign(0, 0);
  const std::string s = make_plan(inst, from, to).summary();
  EXPECT_NE(s.find("1 boots"), std::string::npos);
  EXPECT_NE(s.find("0 migrations"), std::string::npos);
}

SimConfig small_sim() {
  SimConfig cfg;
  cfg.windows = 6;
  cfg.arrivals_per_window_mean = 8.0;
  cfg.departure_probability = 0.15;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  return cfg;
}

TEST(CloudSimulator, RunsFullHorizon) {
  CloudSimulator sim(small_sim(), std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(1);
  ASSERT_EQ(metrics.size(), 6u);
  for (std::size_t w = 0; w < metrics.size(); ++w) {
    EXPECT_EQ(metrics[w].window, w);
    EXPECT_GE(metrics[w].solve_seconds, 0.0);
  }
}

TEST(CloudSimulator, DeterministicPerSeed) {
  CloudSimulator a(small_sim(), std::make_unique<RoundRobinAllocator>());
  CloudSimulator b(small_sim(), std::make_unique<RoundRobinAllocator>());
  const auto ma = a.run(42);
  const auto mb = b.run(42);
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t w = 0; w < ma.size(); ++w) {
    EXPECT_EQ(ma[w].arrived, mb[w].arrived);
    EXPECT_EQ(ma[w].departed, mb[w].departed);
    EXPECT_EQ(ma[w].running, mb[w].running);
    EXPECT_EQ(ma[w].migrations, mb[w].migrations);
    EXPECT_DOUBLE_EQ(ma[w].objectives.aggregate(),
                     mb[w].objectives.aggregate());
  }
}

TEST(CloudSimulator, RunningPopulationBalances) {
  CloudSimulator sim(small_sim(), std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(7);
  std::size_t running = 0;
  for (const WindowMetrics& w : metrics) {
    // After the window: previous running - departed + arrived - rejected.
    const std::size_t expected =
        running - w.departed + w.arrived - w.rejected;
    EXPECT_EQ(w.running, expected) << "window " << w.window;
    running = w.running;
  }
}

TEST(CloudSimulator, FirstWindowBootsEverythingPlaced) {
  SimConfig cfg = small_sim();
  cfg.departure_probability = 0.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(3);
  const WindowMetrics& w0 = metrics.front();
  EXPECT_EQ(w0.boots, w0.arrived - w0.rejected);
  EXPECT_EQ(w0.migrations, 0u);
}

TEST(CloudSimulator, ZeroArrivalsProduceEmptyWindows) {
  SimConfig cfg = small_sim();
  cfg.arrivals_per_window_mean = 0.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(5);
  for (const WindowMetrics& w : metrics) {
    EXPECT_EQ(w.arrived, 0u);
    EXPECT_EQ(w.running, 0u);
    EXPECT_DOUBLE_EQ(w.objectives.aggregate(), 0.0);
  }
}

TEST(CloudSimulator, DrivesTheHybridAllocatorEndToEnd) {
  SimConfig cfg = small_sim();
  cfg.windows = 3;
  cfg.arrivals_per_window_mean = 6.0;
  EaAllocatorOptions options;
  options.nsga.population_size = 16;
  options.nsga.max_evaluations = 320;
  options.nsga.reference_divisions = 4;
  CloudSimulator sim(cfg, std::make_unique<Nsga3TabuAllocator>(options));
  const auto metrics = sim.run(23);
  ASSERT_EQ(metrics.size(), 3u);
  std::size_t running = 0;
  for (const WindowMetrics& w : metrics) {
    const std::size_t expected =
        running - w.departed + w.arrived - w.rejected;
    EXPECT_EQ(w.running, expected);
    running = w.running;
  }
}

TEST(CloudSimulator, FailureInjectionDisplacesVms) {
  SimConfig cfg = small_sim();
  cfg.windows = 12;
  cfg.server_failure_probability = 0.15;
  cfg.departure_probability = 0.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(13);
  std::size_t total_failures = 0;
  std::size_t total_displaced = 0;
  for (const WindowMetrics& w : metrics) {
    total_failures += w.failed_servers;
    total_displaced += w.displaced_vms;
  }
  EXPECT_GT(total_failures, 0u);
  EXPECT_GT(total_displaced, 0u);
}

TEST(CloudSimulator, NoFailuresWhenProbabilityZero) {
  SimConfig cfg = small_sim();
  cfg.server_failure_probability = 0.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  for (const WindowMetrics& w : sim.run(17)) {
    EXPECT_EQ(w.failed_servers, 0u);
    EXPECT_EQ(w.displaced_vms, 0u);
  }
}

TEST(CloudSimulator, FailuresForceMigrationsOffDeadServers) {
  // With certain failure of many servers, surviving VMs must migrate.
  SimConfig cfg = small_sim();
  cfg.windows = 4;
  cfg.server_failure_probability = 0.3;
  cfg.departure_probability = 0.0;
  cfg.arrivals_per_window_mean = 10.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(19);
  std::size_t migrations = 0;
  for (const WindowMetrics& w : metrics) {
    migrations += w.migrations;
  }
  EXPECT_GT(migrations, 0u);
}

TEST(CloudSimulator, DeparturesShrinkPlatform) {
  SimConfig cfg = small_sim();
  cfg.windows = 30;
  cfg.departure_probability = 0.5;
  cfg.arrivals_per_window_mean = 2.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(11);
  // With heavy churn the platform stays small — sanity bound.
  for (const WindowMetrics& w : metrics) {
    EXPECT_LT(w.running, 60u);
  }
  std::size_t total_departed = 0;
  for (const WindowMetrics& w : metrics) {
    total_departed += w.departed;
  }
  EXPECT_GT(total_departed, 0u);
}

}  // namespace
}  // namespace iaas
