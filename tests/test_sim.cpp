// Reconfiguration plans and the cyclic time-window simulator.
#include <gtest/gtest.h>

#include "algo/nsga_allocators.h"
#include "algo/round_robin.h"
#include "sim/reconfiguration_plan.h"
#include "sim/simulator.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;

TEST(ReconfigurationPlan, DiffClassifiesActions) {
  Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  Placement from(4);
  from.assign(0, 0);  // stays
  from.assign(1, 1);  // migrates to 2
  from.assign(2, 2);  // stops
  // VM 3 was not running      -> boots
  Placement to(4);
  to.assign(0, 0);
  to.assign(1, 2);
  to.assign(3, 1);

  const ReconfigurationPlan plan = make_plan(inst, from, to);
  EXPECT_EQ(plan.actions.size(), 3u);
  EXPECT_EQ(plan.boots(), 1u);
  EXPECT_EQ(plan.migrations(), 1u);
  EXPECT_EQ(plan.stops(), 1u);
  // Helper migration cost is 2.0/VM; only VM 1 migrates.
  EXPECT_DOUBLE_EQ(plan.migration_cost(), 2.0);
}

TEST(ReconfigurationPlan, IdenticalPlacementsEmptyPlan) {
  Instance inst =
      make_instance(1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  Placement p(1);
  p.assign(0, 1);
  const ReconfigurationPlan plan = make_plan(inst, p, p);
  EXPECT_TRUE(plan.actions.empty());
  EXPECT_DOUBLE_EQ(plan.migration_cost(), 0.0);
}

TEST(ReconfigurationPlan, SummaryMentionsCounts) {
  Instance inst =
      make_instance(1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  Placement from(1);
  Placement to(1);
  to.assign(0, 0);
  const std::string s = make_plan(inst, from, to).summary();
  EXPECT_NE(s.find("1 boots"), std::string::npos);
  EXPECT_NE(s.find("0 migrations"), std::string::npos);
}

TEST(PoissonSample, SmallMeanMatchesMoments) {
  Rng rng(7);
  const double mean = 20.0;
  const std::size_t n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(poisson_sample(mean, rng));
    sum += x;
    sum_sq += x * x;
  }
  const double sample_mean = sum / static_cast<double>(n);
  const double sample_var =
      sum_sq / static_cast<double>(n) - sample_mean * sample_mean;
  // Poisson: mean == variance == lambda.
  EXPECT_NEAR(sample_mean, mean, 0.15);
  EXPECT_NEAR(sample_var, mean, 1.5);
}

TEST(PoissonSample, LargeMeanNoUnderflow) {
  // exp(-1500) underflows to 0; the raw Knuth loop would then only stop
  // when its running product underflowed too, returning garbage (biased
  // low by orders of magnitude).  The chunked sampler must stay on the
  // Poisson moments.
  Rng rng(11);
  const double mean = 1500.0;
  const std::size_t n = 2000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(poisson_sample(mean, rng));
    sum += x;
    sum_sq += x * x;
  }
  const double sample_mean = sum / static_cast<double>(n);
  const double sample_var =
      sum_sq / static_cast<double>(n) - sample_mean * sample_mean;
  EXPECT_NEAR(sample_mean, mean, mean * 0.03);
  EXPECT_NEAR(sample_var, mean, mean * 0.15);
}

TEST(PoissonSample, EdgeCasesAndDeterminism) {
  Rng rng(3);
  EXPECT_EQ(poisson_sample(0.0, rng), 0u);
  EXPECT_EQ(poisson_sample(-5.0, rng), 0u);
  Rng a(42);
  Rng b(42);
  for (double mean : {0.5, 30.0, 600.0, 1200.0}) {
    EXPECT_EQ(poisson_sample(mean, a), poisson_sample(mean, b));
  }
}

// compact_requests: VM removal with constraint-group remapping (runs on
// every departure/rejection window).
TEST(CompactRequests, RemapsSurvivingGroupIndices) {
  RequestSet requests;
  for (int i = 0; i < 5; ++i) {
    requests.vms.push_back(test::make_vm({1.0, 1.0, 1.0}));
  }
  requests.constraints = {{RelationKind::kSameServer, {1, 3, 4}},
                          {RelationKind::kDifferentServers, {0, 2}}};
  Placement placement(5);
  for (std::uint32_t k = 0; k < 5; ++k) {
    placement.assign(k, static_cast<std::int32_t>(k));
  }
  // Drop VMs 0 and 3: survivors 1,2,4 become 0,1,2.
  compact_requests(requests, placement, {0, 1, 1, 0, 1});

  ASSERT_EQ(requests.vms.size(), 3u);
  ASSERT_EQ(requests.constraints.size(), 1u);
  // {1,3,4} loses member 3 and remaps to the new indices of 1 and 4.
  EXPECT_EQ(requests.constraints[0].kind, RelationKind::kSameServer);
  EXPECT_EQ(requests.constraints[0].vms, (std::vector<std::uint32_t>{0, 2}));
  // Surviving genes keep their server assignments, in survivor order.
  ASSERT_EQ(placement.vm_count(), 3u);
  EXPECT_EQ(placement.server_of(0), 1);
  EXPECT_EQ(placement.server_of(1), 2);
  EXPECT_EQ(placement.server_of(2), 4);
}

TEST(CompactRequests, GroupsBelowTwoMembersAreDropped) {
  RequestSet requests;
  for (int i = 0; i < 4; ++i) {
    requests.vms.push_back(test::make_vm({1.0, 1.0, 1.0}));
  }
  requests.constraints = {{RelationKind::kDifferentServers, {0, 1}},
                          {RelationKind::kSameDatacenter, {2, 3}}};
  Placement placement(4);
  for (std::uint32_t k = 0; k < 4; ++k) {
    placement.assign(k, 0);
  }
  // Drop VM 1: the {0,1} pair shrinks to one member and must vanish;
  // {2,3} survives fully remapped.
  compact_requests(requests, placement, {1, 0, 1, 1});
  ASSERT_EQ(requests.constraints.size(), 1u);
  EXPECT_EQ(requests.constraints[0].kind, RelationKind::kSameDatacenter);
  EXPECT_EQ(requests.constraints[0].vms, (std::vector<std::uint32_t>{1, 2}));
}

TEST(CompactRequests, DropEverythingLeavesEmptySet) {
  RequestSet requests;
  requests.vms.push_back(test::make_vm({1.0, 1.0, 1.0}));
  requests.constraints = {};
  Placement placement(1);
  placement.assign(0, 0);
  compact_requests(requests, placement, {0});
  EXPECT_TRUE(requests.vms.empty());
  EXPECT_EQ(placement.vm_count(), 0u);
}

SimConfig small_sim() {
  SimConfig cfg;
  cfg.windows = 6;
  cfg.arrivals_per_window_mean = 8.0;
  cfg.departure_probability = 0.15;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  return cfg;
}

TEST(CloudSimulator, RunsFullHorizon) {
  CloudSimulator sim(small_sim(), std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(1);
  ASSERT_EQ(metrics.size(), 6u);
  for (std::size_t w = 0; w < metrics.size(); ++w) {
    EXPECT_EQ(metrics[w].window, w);
    EXPECT_GE(metrics[w].solve_seconds, 0.0);
  }
}

TEST(CloudSimulator, DeterministicPerSeed) {
  CloudSimulator a(small_sim(), std::make_unique<RoundRobinAllocator>());
  CloudSimulator b(small_sim(), std::make_unique<RoundRobinAllocator>());
  const auto ma = a.run(42);
  const auto mb = b.run(42);
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t w = 0; w < ma.size(); ++w) {
    EXPECT_EQ(ma[w].arrived, mb[w].arrived);
    EXPECT_EQ(ma[w].departed, mb[w].departed);
    EXPECT_EQ(ma[w].running, mb[w].running);
    EXPECT_EQ(ma[w].migrations, mb[w].migrations);
    EXPECT_DOUBLE_EQ(ma[w].objectives.aggregate(),
                     mb[w].objectives.aggregate());
  }
}

TEST(CloudSimulator, RunningPopulationBalances) {
  CloudSimulator sim(small_sim(), std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(7);
  std::size_t running = 0;
  for (const WindowMetrics& w : metrics) {
    // After the window: previous running - departed + arrived - rejected.
    const std::size_t expected =
        running - w.departed + w.arrived - w.rejected;
    EXPECT_EQ(w.running, expected) << "window " << w.window;
    running = w.running;
  }
}

TEST(CloudSimulator, FirstWindowBootsEverythingPlaced) {
  SimConfig cfg = small_sim();
  cfg.departure_probability = 0.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(3);
  const WindowMetrics& w0 = metrics.front();
  EXPECT_EQ(w0.boots, w0.arrived - w0.rejected);
  EXPECT_EQ(w0.migrations, 0u);
}

TEST(CloudSimulator, ZeroArrivalsProduceEmptyWindows) {
  SimConfig cfg = small_sim();
  cfg.arrivals_per_window_mean = 0.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(5);
  for (const WindowMetrics& w : metrics) {
    EXPECT_EQ(w.arrived, 0u);
    EXPECT_EQ(w.running, 0u);
    EXPECT_DOUBLE_EQ(w.objectives.aggregate(), 0.0);
  }
}

TEST(CloudSimulator, DrivesTheHybridAllocatorEndToEnd) {
  SimConfig cfg = small_sim();
  cfg.windows = 3;
  cfg.arrivals_per_window_mean = 6.0;
  EaAllocatorOptions options;
  options.nsga.population_size = 16;
  options.nsga.max_evaluations = 320;
  options.nsga.reference_divisions = 4;
  CloudSimulator sim(cfg, std::make_unique<Nsga3TabuAllocator>(options));
  const auto metrics = sim.run(23);
  ASSERT_EQ(metrics.size(), 3u);
  std::size_t running = 0;
  for (const WindowMetrics& w : metrics) {
    const std::size_t expected =
        running - w.departed + w.arrived - w.rejected;
    EXPECT_EQ(w.running, expected);
    running = w.running;
  }
}

TEST(CloudSimulator, FailureInjectionDisplacesVms) {
  SimConfig cfg = small_sim();
  cfg.windows = 12;
  cfg.server_failure_probability = 0.15;
  cfg.departure_probability = 0.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(13);
  std::size_t total_failures = 0;
  std::size_t total_displaced = 0;
  for (const WindowMetrics& w : metrics) {
    total_failures += w.failed_servers;
    total_displaced += w.displaced_vms;
  }
  EXPECT_GT(total_failures, 0u);
  EXPECT_GT(total_displaced, 0u);
}

TEST(CloudSimulator, NoFailuresWhenProbabilityZero) {
  SimConfig cfg = small_sim();
  cfg.server_failure_probability = 0.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  for (const WindowMetrics& w : sim.run(17)) {
    EXPECT_EQ(w.failed_servers, 0u);
    EXPECT_EQ(w.displaced_vms, 0u);
  }
}

TEST(CloudSimulator, FailuresForceMigrationsOffDeadServers) {
  // With certain failure of many servers, surviving VMs must migrate.
  SimConfig cfg = small_sim();
  cfg.windows = 4;
  cfg.server_failure_probability = 0.3;
  cfg.departure_probability = 0.0;
  cfg.arrivals_per_window_mean = 10.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(19);
  std::size_t migrations = 0;
  for (const WindowMetrics& w : metrics) {
    migrations += w.migrations;
  }
  EXPECT_GT(migrations, 0u);
}

TEST(CloudSimulator, DeparturesShrinkPlatform) {
  SimConfig cfg = small_sim();
  cfg.windows = 30;
  cfg.departure_probability = 0.5;
  cfg.arrivals_per_window_mean = 2.0;
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(11);
  // With heavy churn the platform stays small — sanity bound.
  for (const WindowMetrics& w : metrics) {
    EXPECT_LT(w.running, 60u);
  }
  std::size_t total_departed = 0;
  for (const WindowMetrics& w : metrics) {
    total_departed += w.departed;
  }
  EXPECT_GT(total_departed, 0u);
}

}  // namespace
}  // namespace iaas
