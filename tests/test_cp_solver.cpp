// Constraint-programming solver (the Choco substitute): feasibility,
// optimality on tiny instances (vs brute force), budgets and fallbacks.
#include "lp/cp_solver.h"

#include <gtest/gtest.h>

#include <functional>
#include <limits>

#include "model/constraint_checker.h"
#include "model/objectives.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;
using test::make_random_instance;

// Exhaustive minimum of the linear cost (usage + opex-per-used-server +
// migration) over all complete feasible placements.
double brute_force_optimum(const Instance& inst) {
  const ConstraintChecker checker(inst);
  Evaluator evaluator(inst);
  double best = std::numeric_limits<double>::infinity();
  Placement p(inst.n());
  std::function<void(std::size_t)> rec = [&](std::size_t k) {
    if (k == inst.n()) {
      if (checker.check(p).feasible()) {
        const ObjectiveVector obj = evaluator.objectives(p);
        best = std::min(best, obj.usage_cost + obj.migration_cost);
      }
      return;
    }
    for (std::size_t j = 0; j < inst.m(); ++j) {
      p.assign(k, static_cast<std::int32_t>(j));
      rec(k + 1);
    }
    p.reject(k);
  };
  rec(0);
  return best;
}

TEST(CpSolver, FindsFeasibleCompleteAssignment) {
  const Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0},
      {{4.0, 4.0, 4.0}, {4.0, 4.0, 4.0}, {4.0, 4.0, 4.0}});
  CpSolver solver(inst);
  CpStats stats;
  const Placement p = solver.solve(&stats);
  EXPECT_TRUE(stats.found_complete);
  EXPECT_EQ(p.rejected_count(), 0u);
  EXPECT_TRUE(ConstraintChecker(inst).check(p).feasible());
}

TEST(CpSolver, MatchesBruteForceOptimumOnTinyInstances) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Instance inst = make_random_instance(seed, 4, 5);
    CpSolver solver(inst);
    CpStats stats;
    const Placement p = solver.solve(&stats);
    ASSERT_TRUE(stats.found_complete) << "seed " << seed;
    EXPECT_TRUE(stats.proved_optimal) << "seed " << seed;

    Evaluator evaluator(inst);
    const ObjectiveVector obj = evaluator.objectives(p);
    const double expected = brute_force_optimum(inst);
    EXPECT_NEAR(obj.usage_cost + obj.migration_cost, expected, 1e-6)
        << "seed " << seed;
  }
}

TEST(CpSolver, RespectsRelationshipConstraints) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0},
      {{2.0, 2.0, 2.0}, {2.0, 2.0, 2.0}, {2.0, 2.0, 2.0}, {2.0, 2.0, 2.0}},
      {{RelationKind::kSameServer, {0, 1}},
       {RelationKind::kDifferentDatacenters, {2, 3}}});
  CpSolver solver(inst);
  const Placement p = solver.solve();
  ASSERT_EQ(p.rejected_count(), 0u);
  EXPECT_EQ(p.server_of(0), p.server_of(1));
  EXPECT_NE(inst.infra.datacenter_of(static_cast<std::size_t>(p.server_of(2))),
            inst.infra.datacenter_of(static_cast<std::size_t>(p.server_of(3))));
}

TEST(CpSolver, PrefersCheapServers) {
  // Two servers, one expensive; a single small VM must land on the cheap
  // one.
  FabricConfig fc;
  fc.datacenters = 1;
  fc.leaves_per_dc = 1;
  fc.servers_per_leaf = 2;
  std::vector<Server> servers = {
      test::make_server(0, {10.0, 10.0, 10.0}, /*opex=*/50.0, /*usage=*/5.0),
      test::make_server(0, {10.0, 10.0, 10.0}, /*opex=*/5.0, /*usage=*/1.0)};
  RequestSet requests;
  requests.vms.push_back(test::make_vm({1.0, 1.0, 1.0}));
  Instance inst(Infrastructure(fc, std::move(servers)), std::move(requests));

  CpSolver solver(inst);
  const Placement p = solver.solve();
  EXPECT_EQ(p.server_of(0), 1);
}

TEST(CpSolver, GreedyFallbackRejectsOversizedVm) {
  // VM demands more than any server offers: must be rejected, not placed.
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{20.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  CpSolver solver(inst);
  CpStats stats;
  const Placement p = solver.solve(&stats);
  EXPECT_FALSE(stats.found_complete);
  EXPECT_FALSE(p.is_assigned(0));
  EXPECT_TRUE(p.is_assigned(1));
  EXPECT_TRUE(ConstraintChecker(inst).check(p).feasible());
}

TEST(CpSolver, GreedyWithRejectionAlwaysFeasible) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const Instance inst = make_random_instance(seed, 8, 40);
    CpSolver solver(inst);
    const Placement p = solver.greedy_with_rejection();
    EXPECT_TRUE(ConstraintChecker(inst).check(p).feasible());
  }
}

TEST(CpSolver, HonoursBacktrackBudget) {
  CpSolverOptions options;
  options.max_backtracks = 10;
  const Instance inst = make_random_instance(5, 8, 16);
  CpSolver solver(inst, options);
  CpStats stats;
  solver.solve(&stats);
  EXPECT_LE(stats.backtracks, 10u + 1u);
}

TEST(CpSolver, HonoursDeadline) {
  CpSolverOptions options;
  options.time_limit_seconds = 0.0;  // already expired
  const Instance inst = make_random_instance(6, 8, 16);
  CpSolver solver(inst, options);
  CpStats stats;
  const Placement p = solver.solve(&stats);
  EXPECT_TRUE(stats.timed_out);
  // Fallback still yields a feasible (possibly rejecting) placement.
  EXPECT_TRUE(ConstraintChecker(inst).check(p).feasible());
}

TEST(CpSolver, FirstSolutionOnlyWhenOptimizeOff) {
  CpSolverOptions options;
  options.optimize = false;
  const Instance inst = make_random_instance(7, 4, 6);
  CpSolver solver(inst, options);
  CpStats stats;
  const Placement p = solver.solve(&stats);
  EXPECT_TRUE(stats.found_complete);
  EXPECT_FALSE(stats.proved_optimal);  // stopped at the first leaf
  EXPECT_EQ(p.rejected_count(), 0u);
}

// Property: branch-and-bound never returns a costlier complete solution
// than the greedy first-fit (greedy is one branch of the search tree).
class CpVsGreedy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpVsGreedy, OptimizedNeverWorseThanGreedy) {
  const Instance inst = make_random_instance(GetParam(), 8, 16);
  CpSolver solver(inst);
  CpStats stats;
  const Placement solved = solver.solve(&stats);
  if (!stats.found_complete) {
    GTEST_SKIP() << "instance not completable";
  }
  const Placement greedy = solver.greedy_with_rejection();
  if (greedy.rejected_count() > 0) {
    return;  // greedy rejected; costs not comparable
  }
  Evaluator evaluator(inst);
  const ObjectiveVector a = evaluator.objectives(solved);
  const ObjectiveVector b = evaluator.objectives(greedy);
  EXPECT_LE(a.usage_cost + a.migration_cost,
            b.usage_cost + b.migration_cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpVsGreedy,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u,
                                           106u));

TEST(CpSolver, MigrationAwareCostPrefersStaying) {
  Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  inst.previous.assign(0, 1);  // currently on server 1 (identical servers)
  CpSolver solver(inst);
  const Placement p = solver.solve();
  EXPECT_EQ(p.server_of(0), 1);  // moving would add M_k for nothing
}

}  // namespace
}  // namespace iaas
