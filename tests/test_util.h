// Shared helpers for building small, fully-controlled instances in tests.
#pragma once

#include <vector>

#include "model/instance.h"
#include "workload/generator.h"

namespace iaas::test {

inline Server make_server(std::uint32_t datacenter,
                          std::vector<double> capacity, double opex = 10.0,
                          double usage_cost = 1.0, double factor = 1.0,
                          double max_load = 0.8, double max_qos = 0.95) {
  Server s;
  s.datacenter = datacenter;
  s.capacity = std::move(capacity);
  s.factor.assign(s.capacity.size(), factor);
  s.max_load.assign(s.capacity.size(), max_load);
  s.max_qos.assign(s.capacity.size(), max_qos);
  s.opex = opex;
  s.usage_cost = usage_cost;
  return s;
}

inline VmRequest make_vm(std::vector<double> demand, double qos = 0.9,
                         double downtime_cost = 10.0,
                         double migration_cost = 2.0) {
  VmRequest vm;
  vm.demand = std::move(demand);
  vm.qos_guarantee = qos;
  vm.downtime_cost = downtime_cost;
  vm.migration_cost = migration_cost;
  return vm;
}

// g datacenters x servers_per_dc identical servers (one leaf per DC), all
// with `capacity` per attribute; VMs given by their demand vectors.
inline Instance make_instance(
    std::uint32_t datacenters, std::uint32_t servers_per_dc,
    const std::vector<double>& capacity,
    const std::vector<std::vector<double>>& vm_demands,
    std::vector<PlacementConstraint> constraints = {}) {
  FabricConfig fc;
  fc.datacenters = datacenters;
  fc.leaves_per_dc = 1;
  fc.servers_per_leaf = servers_per_dc;
  fc.spines_per_dc = 2;
  fc.cores = 2;

  std::vector<Server> servers;
  for (std::uint32_t dc = 0; dc < datacenters; ++dc) {
    for (std::uint32_t s = 0; s < servers_per_dc; ++s) {
      servers.push_back(make_server(dc, capacity));
    }
  }
  RequestSet requests;
  for (const auto& demand : vm_demands) {
    requests.vms.push_back(make_vm(demand));
  }
  requests.constraints = std::move(constraints);
  return Instance(Infrastructure(fc, std::move(servers)),
                  std::move(requests));
}

// A small random instance via the real generator (deterministic per seed).
inline Instance make_random_instance(std::uint64_t seed,
                                     std::uint32_t servers = 16,
                                     std::uint32_t vms = 32) {
  ScenarioConfig cfg = ScenarioConfig::paper_scale(servers);
  cfg.vms = vms;
  return ScenarioGenerator(cfg).generate(seed);
}

}  // namespace iaas::test
