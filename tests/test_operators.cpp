// SBX / polynomial-mutation variation operators on integer genes.
#include "ea/operators.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace iaas {
namespace {

std::vector<std::int32_t> constant_genes(std::size_t n, std::int32_t v) {
  return std::vector<std::int32_t>(n, v);
}

TEST(RandomizeGenes, WithinBounds) {
  Rng rng(1);
  std::vector<std::int32_t> genes(1000);
  randomize_genes(genes, 15, rng);
  for (std::int32_t g : genes) {
    EXPECT_GE(g, 0);
    EXPECT_LE(g, 15);
  }
  // All values reachable.
  for (std::int32_t v = 0; v <= 15; ++v) {
    EXPECT_NE(std::find(genes.begin(), genes.end(), v), genes.end());
  }
}

TEST(Sbx, ChildrenWithinBounds) {
  Rng rng(2);
  const auto pa = constant_genes(64, 0);
  const auto pb = constant_genes(64, 99);
  SbxParams params;
  params.rate = 1.0;
  for (int round = 0; round < 50; ++round) {
    std::vector<std::int32_t> ca;
    std::vector<std::int32_t> cb;
    sbx_crossover(pa, pb, ca, cb, 99, params, rng);
    for (std::size_t g = 0; g < 64; ++g) {
      EXPECT_GE(ca[g], 0);
      EXPECT_LE(ca[g], 99);
      EXPECT_GE(cb[g], 0);
      EXPECT_LE(cb[g], 99);
    }
  }
}

TEST(Sbx, ZeroRateCopiesParents) {
  Rng rng(3);
  const auto pa = constant_genes(16, 3);
  const auto pb = constant_genes(16, 7);
  SbxParams params;
  params.rate = 0.0;
  std::vector<std::int32_t> ca;
  std::vector<std::int32_t> cb;
  sbx_crossover(pa, pb, ca, cb, 10, params, rng);
  EXPECT_EQ(ca, pa);
  EXPECT_EQ(cb, pb);
}

TEST(Sbx, IdenticalParentsYieldIdenticalChildren) {
  Rng rng(4);
  const auto p = constant_genes(32, 5);
  SbxParams params;
  params.rate = 1.0;
  std::vector<std::int32_t> ca;
  std::vector<std::int32_t> cb;
  sbx_crossover(p, p, ca, cb, 10, params, rng);
  // SBX blends the two parent values; identical parents -> same value.
  EXPECT_EQ(ca, p);
  EXPECT_EQ(cb, p);
}

TEST(Sbx, MixesParentValues) {
  Rng rng(5);
  const auto pa = constant_genes(256, 10);
  const auto pb = constant_genes(256, 90);
  SbxParams params;
  params.rate = 1.0;
  std::vector<std::int32_t> ca;
  std::vector<std::int32_t> cb;
  sbx_crossover(pa, pb, ca, cb, 100, params, rng);
  // Some genes crossed (not all equal to either parent everywhere).
  bool any_changed = false;
  for (std::size_t g = 0; g < 256; ++g) {
    if (ca[g] != 10 || cb[g] != 90) {
      any_changed = true;
      break;
    }
  }
  EXPECT_TRUE(any_changed);
}

TEST(Sbx, DeterministicForSameSeed) {
  const auto pa = constant_genes(32, 2);
  const auto pb = constant_genes(32, 8);
  SbxParams params;
  params.rate = 1.0;
  std::vector<std::int32_t> ca1, cb1, ca2, cb2;
  Rng r1(77);
  sbx_crossover(pa, pb, ca1, cb1, 10, params, r1);
  Rng r2(77);
  sbx_crossover(pa, pb, ca2, cb2, 10, params, r2);
  EXPECT_EQ(ca1, ca2);
  EXPECT_EQ(cb1, cb2);
}

TEST(Pm, WithinBounds) {
  Rng rng(6);
  PmParams params;
  params.rate = 1.0;
  for (int round = 0; round < 20; ++round) {
    auto genes = constant_genes(64, 50);
    polynomial_mutation(genes, 99, params, rng);
    for (std::int32_t g : genes) {
      EXPECT_GE(g, 0);
      EXPECT_LE(g, 99);
    }
  }
}

TEST(Pm, ZeroRateIsNoop) {
  Rng rng(7);
  auto genes = constant_genes(32, 4);
  PmParams params;
  params.rate = 0.0;
  polynomial_mutation(genes, 10, params, rng);
  EXPECT_EQ(genes, constant_genes(32, 4));
}

TEST(Pm, FullRateAlwaysPerturbs) {
  // The integer adaptation nudges by at least one step, so rate-1.0
  // mutation must change every gene (domain > 1).
  Rng rng(8);
  auto genes = constant_genes(128, 25);
  PmParams params;
  params.rate = 1.0;
  polynomial_mutation(genes, 50, params, rng);
  for (std::int32_t g : genes) {
    EXPECT_NE(g, 25);
  }
}

TEST(Pm, ApproximatesConfiguredRate) {
  Rng rng(9);
  PmParams params;
  params.rate = 0.2;  // Table III
  int changed = 0;
  const int total = 20000;
  auto genes = constant_genes(total, 25);
  polynomial_mutation(genes, 50, params, rng);
  for (std::int32_t g : genes) {
    changed += g != 25 ? 1 : 0;
  }
  EXPECT_NEAR(changed / static_cast<double>(total), 0.2, 0.02);
}

TEST(Pm, SingleServerDomainIsNoop) {
  Rng rng(10);
  auto genes = constant_genes(8, 0);
  PmParams params;
  params.rate = 1.0;
  polynomial_mutation(genes, 0, params, rng);
  EXPECT_EQ(genes, constant_genes(8, 0));
}

TEST(Pm, BoundaryGenesStayInDomain) {
  Rng rng(11);
  PmParams params;
  params.rate = 1.0;
  auto genes = constant_genes(64, 0);
  polynomial_mutation(genes, 9, params, rng);
  for (std::int32_t g : genes) {
    EXPECT_GE(g, 0);
    EXPECT_LE(g, 9);
  }
  genes = constant_genes(64, 9);
  polynomial_mutation(genes, 9, params, rng);
  for (std::int32_t g : genes) {
    EXPECT_GE(g, 0);
    EXPECT_LE(g, 9);
  }
}

}  // namespace
}  // namespace iaas
