// Delta-evaluation engine (PlacementState): every accumulator must agree
// with a from-scratch Evaluator::evaluate after any sequence of moves,
// rejections, and reverts — the invariant DESIGN.md §7 promises.
#include "model/placement_state.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "model/objectives.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;
using test::make_random_instance;

constexpr double kTol = 1e-9;

// Asserts that the incremental state matches a full rebuild of the same
// placement, objective term by term and violation count by count.
void expect_matches_full(PlacementState& state, Evaluator& evaluator) {
  const Evaluation full = evaluator.evaluate(state.placement());
  const ObjectiveVector incremental = state.objectives();
  EXPECT_NEAR(incremental.usage_cost, full.objectives.usage_cost, kTol);
  EXPECT_NEAR(incremental.downtime_cost, full.objectives.downtime_cost, kTol);
  EXPECT_NEAR(incremental.migration_cost, full.objectives.migration_cost,
              kTol);
  EXPECT_NEAR(state.aggregate(), full.objectives.aggregate(), kTol);
  EXPECT_EQ(state.capacity_violations(), full.violations.capacity_violations);
  EXPECT_EQ(state.relation_violations(), full.violations.relation_violations);
  EXPECT_EQ(state.rejected_count(), full.violations.rejected_vms);
  EXPECT_EQ(state.violation_report().overloaded_servers,
            full.violations.overloaded_servers);
}

Instance constrained_instance(std::uint64_t seed) {
  ScenarioConfig cfg = ScenarioConfig::paper_scale(16);
  cfg.vms = 48;
  cfg.constrained_fraction = 0.5;   // plenty of relationship groups
  cfg.preplaced_fraction = 0.5;     // exercise the migration term
  return ScenarioGenerator(cfg).generate(seed);
}

std::vector<std::int32_t> random_genes(const Instance& inst, Rng& rng) {
  std::vector<std::int32_t> genes(inst.n());
  for (auto& g : genes) {
    // ~10% rejected so the rejection bookkeeping is exercised too.
    g = rng.bernoulli(0.1)
            ? Placement::kRejected
            : static_cast<std::int32_t>(rng.uniform_index(inst.m()));
  }
  return genes;
}

TEST(PlacementState, FreshStateIsEmptyAndConsistent) {
  const Instance inst = constrained_instance(1);
  PlacementState state(inst);
  Evaluator evaluator(inst);
  EXPECT_EQ(state.rejected_count(), inst.n());
  EXPECT_DOUBLE_EQ(state.aggregate(), 0.0);
  expect_matches_full(state, evaluator);
}

TEST(PlacementState, RebuildMatchesEvaluator) {
  const Instance inst = constrained_instance(2);
  PlacementState state(inst);
  Evaluator evaluator(inst);
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    state.rebuild(random_genes(inst, rng));
    expect_matches_full(state, evaluator);
  }
}

TEST(PlacementState, TryMoveLeavesStateUntouched) {
  const Instance inst = constrained_instance(3);
  PlacementState state(inst);
  Rng rng(11);
  state.rebuild(random_genes(inst, rng));
  const ObjectiveVector before = state.objectives();
  const Placement snapshot = state.placement();
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t k = rng.uniform_index(inst.n());
    const auto target =
        static_cast<std::int32_t>(rng.uniform_index(inst.m()));
    (void)state.try_move(k, target);
  }
  EXPECT_EQ(state.placement(), snapshot);
  EXPECT_DOUBLE_EQ(state.objectives().aggregate(), before.aggregate());
}

TEST(PlacementState, TryMovePredictsFullEvaluation) {
  const Instance inst = constrained_instance(4);
  PlacementState state(inst);
  Evaluator evaluator(inst);
  Rng rng(13);
  state.rebuild(random_genes(inst, rng));

  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = rng.uniform_index(inst.n());
    const std::int32_t target =
        rng.bernoulli(0.1)
            ? Placement::kRejected
            : static_cast<std::int32_t>(rng.uniform_index(inst.m()));
    const ObjectiveDelta delta = state.try_move(k, target);

    Placement hypothetical = state.placement();
    hypothetical.assign(k, target);
    const Evaluation full = evaluator.evaluate(hypothetical);
    EXPECT_NEAR(delta.objectives.usage_cost, full.objectives.usage_cost,
                kTol);
    EXPECT_NEAR(delta.objectives.downtime_cost,
                full.objectives.downtime_cost, kTol);
    EXPECT_NEAR(delta.objectives.migration_cost,
                full.objectives.migration_cost, kTol);
    EXPECT_NEAR(delta.aggregate_delta,
                full.objectives.aggregate() - state.aggregate(), kTol);
    EXPECT_EQ(static_cast<std::int32_t>(state.total_violations()) +
                  delta.violations_delta,
              static_cast<std::int32_t>(full.violations.total()));
  }
}

TEST(PlacementState, ApplyCommitsThePendingMove) {
  const Instance inst = constrained_instance(5);
  PlacementState state(inst);
  Evaluator evaluator(inst);
  Rng rng(17);
  state.rebuild(random_genes(inst, rng));

  const std::size_t k = 0;
  const std::int32_t target =
      (state.placement().server_of(k) + 1) %
      static_cast<std::int32_t>(inst.m());
  const ObjectiveDelta delta = state.try_move(k, target);
  state.apply();
  EXPECT_EQ(state.placement().server_of(k), target);
  EXPECT_NEAR(state.aggregate(), delta.objectives.aggregate(), kTol);
  expect_matches_full(state, evaluator);
}

TEST(PlacementState, RevertRestoresEverything) {
  const Instance inst = constrained_instance(6);
  PlacementState state(inst);
  Evaluator evaluator(inst);
  Rng rng(19);
  state.rebuild(random_genes(inst, rng));
  const Placement original = state.placement();
  const double original_aggregate = state.aggregate();

  Rng move_rng(23);
  for (int i = 0; i < 50; ++i) {
    const std::size_t k = move_rng.uniform_index(inst.n());
    const std::int32_t target =
        move_rng.bernoulli(0.1)
            ? Placement::kRejected
            : static_cast<std::int32_t>(move_rng.uniform_index(inst.m()));
    state.apply_move(k, target);
  }
  while (state.applied_moves() > 0) {
    state.revert();
  }
  EXPECT_EQ(state.placement(), original);
  EXPECT_NEAR(state.aggregate(), original_aggregate, kTol);
  expect_matches_full(state, evaluator);
}

TEST(PlacementState, RelationViolationsTrackMoves) {
  // Two VMs bound to the same server, placed apart then together.
  PlacementConstraint c;
  c.kind = RelationKind::kSameServer;
  c.vms = {0, 1};
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}}, {c});
  PlacementState state(inst);
  state.rebuild(std::vector<std::int32_t>{0, 1});
  EXPECT_EQ(state.relation_violations(), 1u);

  const ObjectiveDelta fix = state.try_move(1, 0);
  EXPECT_EQ(fix.violations_delta, -1);
  state.apply();
  EXPECT_EQ(state.relation_violations(), 0u);
  state.revert();
  EXPECT_EQ(state.relation_violations(), 1u);
}

TEST(PlacementState, CapacityViolationsTrackMoves) {
  // One server of capacity 10 receiving 2 x 6 demand.
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{6.0, 6.0, 6.0}, {6.0, 6.0, 6.0}});
  PlacementState state(inst);
  state.rebuild(std::vector<std::int32_t>{0, 1});
  EXPECT_EQ(state.capacity_violations(), 0u);
  EXPECT_FALSE(state.server_overloaded(0));

  const ObjectiveDelta crowd = state.try_move(1, 0);
  EXPECT_EQ(crowd.violations_delta, 3);  // all three attributes exceed
  state.apply();
  EXPECT_TRUE(state.server_overloaded(0));
  EXPECT_EQ(state.capacity_violations(), 3u);
  state.revert();
  EXPECT_EQ(state.capacity_violations(), 0u);
}

TEST(ConstraintChecker, IsValidMoveMatchesIsValidAllocation) {
  const Instance inst = constrained_instance(8);
  const ConstraintChecker checker(inst);
  PlacementState state(inst);
  Rng rng(29);
  state.rebuild(random_genes(inst, rng));

  Matrix<double> used;
  checker.compute_used(state.placement(), used);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = rng.uniform_index(inst.n());
    const std::size_t j = rng.uniform_index(inst.m());
    EXPECT_EQ(checker.is_valid_move(state, k, j),
              checker.is_valid_allocation(state.placement(), used, k, j));
  }
}

TEST(PlacementState, ViolationsOnlyModeTracksViolationsExactly) {
  // The repair operators run the state in kViolationsOnly mode; its
  // violation counters, used matrix, and VM lists must stay identical to
  // the full-tracking state through any move sequence.
  const Instance inst = constrained_instance(9);
  PlacementState full(inst);
  PlacementState lean(inst, {}, StateTracking::kViolationsOnly);
  Rng rng(31);
  const std::vector<std::int32_t> genes = random_genes(inst, rng);
  full.rebuild(genes);
  lean.rebuild(genes);

  for (int step = 0; step < 200; ++step) {
    const std::size_t k = rng.uniform_index(inst.n());
    const std::int32_t target =
        rng.bernoulli(0.1)
            ? Placement::kRejected
            : static_cast<std::int32_t>(rng.uniform_index(inst.m()));
    const ObjectiveDelta lean_delta = lean.try_move(k, target);
    const ObjectiveDelta full_delta = full.try_move(k, target);
    EXPECT_EQ(lean_delta.violations_delta, full_delta.violations_delta);
    full.apply();
    lean.apply();
    EXPECT_EQ(lean.capacity_violations(), full.capacity_violations());
    EXPECT_EQ(lean.relation_violations(), full.relation_violations());
    EXPECT_EQ(lean.rejected_count(), full.rejected_count());
    EXPECT_EQ(lean.placement(), full.placement());
    if (::testing::Test::HasFailure()) {
      FAIL() << "divergence at step " << step;
    }
  }
  for (std::size_t j = 0; j < inst.m(); ++j) {
    EXPECT_EQ(lean.server_overloaded(j), full.server_overloaded(j));
  }
}

TEST(PlacementState, SharedTablesMatchPrivateTables) {
  // Several states over one immutable StateTables must behave exactly
  // like states that flattened the instance themselves.
  const Instance inst = constrained_instance(10);
  const auto tables = std::make_shared<const StateTables>(inst);
  PlacementState shared_a(inst, {}, StateTracking::kFull, tables);
  PlacementState shared_b(inst, {}, StateTracking::kViolationsOnly, tables);
  PlacementState private_state(inst);
  Evaluator evaluator(inst);
  Rng rng(37);
  const std::vector<std::int32_t> genes = random_genes(inst, rng);
  shared_a.rebuild(genes);
  shared_b.rebuild(genes);
  private_state.rebuild(genes);
  expect_matches_full(shared_a, evaluator);
  EXPECT_NEAR(shared_a.aggregate(), private_state.aggregate(), kTol);
  EXPECT_EQ(shared_b.capacity_violations(),
            private_state.capacity_violations());
  EXPECT_EQ(shared_b.relation_violations(),
            private_state.relation_violations());
  EXPECT_EQ(shared_a.tables().get(), tables.get());
}

TEST(PlacementState, MembershipListsMirrorThePlacement) {
  // vms_on(j) must enumerate exactly the VMs the placement maps to j;
  // a fresh rebuild lists them in ascending VM order (tail insertion).
  const Instance inst = constrained_instance(11);
  PlacementState state(inst);
  Rng rng(41);
  state.rebuild(random_genes(inst, rng));

  std::size_t total_members = 0;
  for (std::size_t j = 0; j < inst.m(); ++j) {
    std::vector<std::uint32_t> members(state.vms_on(j).begin(),
                                       state.vms_on(j).end());
    EXPECT_EQ(members.size(), state.vm_count_on(j));
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    for (const std::uint32_t k : members) {
      EXPECT_EQ(state.placement().server_of(k),
                static_cast<std::int32_t>(j));
    }
    total_members += members.size();
  }
  EXPECT_EQ(total_members, inst.n() - state.rejected_count());
}

TEST(PlacementState, AssignFromClonesAndDecouples) {
  const Instance inst = constrained_instance(12);
  const auto tables = std::make_shared<const StateTables>(inst);
  PlacementState source(inst, {}, StateTracking::kFull, tables);
  PlacementState copy(inst, {}, StateTracking::kFull, tables);
  Evaluator evaluator(inst);
  Rng rng(43);
  source.rebuild(random_genes(inst, rng));
  source.apply_move(0, Placement::kRejected);  // non-empty undo log

  copy.assign_from(source);
  EXPECT_EQ(copy.placement(), source.placement());
  EXPECT_NEAR(copy.aggregate(), source.aggregate(), kTol);
  EXPECT_EQ(copy.applied_moves(), 0u);  // undo log does not transfer
  expect_matches_full(copy, evaluator);

  // The clone is independent: moves on one never leak into the other.
  const Placement source_before = source.placement();
  for (int step = 0; step < 40; ++step) {
    copy.apply_move(rng.uniform_index(inst.n()),
                    static_cast<std::int32_t>(rng.uniform_index(inst.m())));
  }
  EXPECT_EQ(source.placement(), source_before);
  expect_matches_full(source, evaluator);
  expect_matches_full(copy, evaluator);
}

// Rebase property: after any mix of moves, a gene-diff rebase must leave
// the state indistinguishable from a from-scratch rebuild of the target
// genes — across small diffs (delta path), large diffs (threshold
// fallback to rebuild), and the zero-diff fast path.
class RebaseProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RebaseProperty, RebaseAgreesWithFullEvaluation) {
  const Instance inst = constrained_instance(GetParam() + 20);
  const auto tables = std::make_shared<const StateTables>(inst);
  PlacementState state(inst, {}, StateTracking::kFull, tables);
  PlacementState lean(inst, {}, StateTracking::kViolationsOnly, tables);
  Evaluator evaluator(inst, {}, tables);
  Rng rng(GetParam() * 104729 + 3);

  std::vector<std::int32_t> genes = random_genes(inst, rng);
  state.rebuild(genes);
  lean.rebuild(genes);

  for (int round = 0; round < 30; ++round) {
    // Drift the live states with interleaved applies and reverts so the
    // rebase starts from a placement with history, not a fresh rebuild.
    for (int step = 0; step < 20; ++step) {
      if (state.applied_moves() > 0 && rng.bernoulli(0.3)) {
        state.revert();
        lean.revert();
      } else {
        const std::size_t k = rng.uniform_index(inst.n());
        const std::int32_t target =
            rng.bernoulli(0.1)
                ? Placement::kRejected
                : static_cast<std::int32_t>(rng.uniform_index(inst.m()));
        state.apply_move(k, target);
        lean.apply_move(k, target);
      }
    }

    // Perturbation size sweeps the spectrum: the small end exercises the
    // touched-server delta path, the large end the rebuild fallback.
    genes = state.placement().genes();
    const std::size_t flips =
        round % 3 == 2 ? inst.n() : 1 + rng.uniform_index(inst.n() / 4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t k = rng.uniform_index(inst.n());
      genes[k] = rng.bernoulli(0.1)
                     ? Placement::kRejected
                     : static_cast<std::int32_t>(rng.uniform_index(inst.m()));
    }

    const std::size_t diff_full = state.rebase(genes);
    const std::size_t diff_lean = lean.rebase(genes);
    EXPECT_EQ(diff_full, diff_lean);
    EXPECT_LE(diff_full, flips);
    EXPECT_EQ(state.placement().genes(), genes);
    EXPECT_EQ(lean.placement(), state.placement());
    EXPECT_EQ(state.applied_moves(), 0u);  // rebase clears the undo log
    expect_matches_full(state, evaluator);
    EXPECT_EQ(lean.capacity_violations(), state.capacity_violations());
    EXPECT_EQ(lean.relation_violations(), state.relation_violations());
    EXPECT_EQ(lean.rejected_count(), state.rejected_count());
    if (::testing::Test::HasFailure()) {
      FAIL() << "divergence at round " << round;
    }
  }

  // Zero-diff rebase is a no-op that reports zero changes.
  const double aggregate_before = state.aggregate();
  EXPECT_EQ(state.rebase(state.placement().genes()), 0u);
  EXPECT_DOUBLE_EQ(state.aggregate(), aggregate_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebaseProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

// The headline property: hundreds of interleaved applies and reverts,
// cross-checked against a full rebuild at every step.
class PlacementStateProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PlacementStateProperty, DeltaAgreesWithFullAtEveryStep) {
  const Instance inst = constrained_instance(GetParam());
  PlacementState state(inst);
  Evaluator evaluator(inst);
  Rng rng(GetParam() * 7919 + 1);
  state.rebuild(random_genes(inst, rng));
  expect_matches_full(state, evaluator);

  for (int step = 0; step < 300; ++step) {
    if (state.applied_moves() > 0 && rng.bernoulli(0.25)) {
      state.revert();
    } else {
      const std::size_t k = rng.uniform_index(inst.n());
      const std::int32_t target =
          rng.bernoulli(0.1)
              ? Placement::kRejected
              : static_cast<std::int32_t>(rng.uniform_index(inst.m()));
      const ObjectiveDelta delta = state.try_move(k, target);
      const std::int32_t predicted =
          static_cast<std::int32_t>(state.total_violations()) +
          delta.violations_delta;
      state.apply();
      EXPECT_NEAR(state.aggregate(), delta.objectives.aggregate(), kTol);
      EXPECT_EQ(static_cast<std::int32_t>(state.total_violations()),
                predicted);
    }
    expect_matches_full(state, evaluator);
    if (::testing::Test::HasFailure()) {
      FAIL() << "divergence at step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementStateProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace iaas
