// Fast non-dominated sorting, dominance relations, crowding distance.
#include "ea/nondominated_sort.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace iaas {
namespace {

Individual ind(double a, double b, double c, std::uint32_t violations = 0) {
  Individual i;
  i.objectives = {a, b, c};
  i.violations = violations;
  return i;
}

const DominanceFn kPlain = [](const Individual& a, const Individual& b) {
  return dominates(a, b);
};
const DominanceFn kConstrained = [](const Individual& a,
                                    const Individual& b) {
  return constrained_dominates(a, b);
};

TEST(Dominance, StrictlyBetterOnOneAxisDominates) {
  EXPECT_TRUE(dominates(ind(1, 2, 3), ind(1, 2, 4)));
  EXPECT_FALSE(dominates(ind(1, 2, 4), ind(1, 2, 3)));
}

TEST(Dominance, EqualPointsDoNotDominate) {
  EXPECT_FALSE(dominates(ind(1, 2, 3), ind(1, 2, 3)));
}

TEST(Dominance, IncomparablePoints) {
  EXPECT_FALSE(dominates(ind(1, 5, 3), ind(2, 1, 3)));
  EXPECT_FALSE(dominates(ind(2, 1, 3), ind(1, 5, 3)));
}

TEST(ConstrainedDominance, FeasibleBeatsInfeasible) {
  EXPECT_TRUE(constrained_dominates(ind(9, 9, 9, 0), ind(1, 1, 1, 1)));
  EXPECT_FALSE(constrained_dominates(ind(1, 1, 1, 1), ind(9, 9, 9, 0)));
}

TEST(ConstrainedDominance, FewerViolationsWinAmongInfeasible) {
  EXPECT_TRUE(constrained_dominates(ind(9, 9, 9, 1), ind(1, 1, 1, 5)));
}

TEST(ConstrainedDominance, ParetoAmongFeasible) {
  EXPECT_TRUE(constrained_dominates(ind(1, 1, 1, 0), ind(2, 2, 2, 0)));
  EXPECT_FALSE(constrained_dominates(ind(1, 5, 1, 0), ind(2, 2, 2, 0)));
}

TEST(NondominatedSort, SingleFrontWhenIncomparable) {
  Population pop = {ind(1, 3, 2), ind(2, 1, 3), ind(3, 2, 1)};
  const auto fronts = nondominated_sort(pop, kPlain);
  ASSERT_EQ(fronts.size(), 1u);
  EXPECT_EQ(fronts[0].size(), 3u);
  for (const Individual& i : pop) {
    EXPECT_EQ(i.rank, 0u);
  }
}

TEST(NondominatedSort, ChainGivesOneFrontEach) {
  Population pop = {ind(3, 3, 3), ind(1, 1, 1), ind(2, 2, 2)};
  const auto fronts = nondominated_sort(pop, kPlain);
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(pop[1].rank, 0u);
  EXPECT_EQ(pop[2].rank, 1u);
  EXPECT_EQ(pop[0].rank, 2u);
}

TEST(NondominatedSort, FrontsPartitionPopulation) {
  Rng rng(3);
  Population pop;
  for (int i = 0; i < 60; ++i) {
    pop.push_back(ind(rng.next_double(), rng.next_double(),
                      rng.next_double()));
  }
  const auto fronts = nondominated_sort(pop, kPlain);
  std::size_t total = 0;
  for (const auto& f : fronts) {
    total += f.size();
  }
  EXPECT_EQ(total, pop.size());
}

TEST(NondominatedSort, RankZeroIsTrulyNondominated) {
  Rng rng(5);
  Population pop;
  for (int i = 0; i < 80; ++i) {
    pop.push_back(ind(rng.next_double(), rng.next_double(),
                      rng.next_double()));
  }
  const auto fronts = nondominated_sort(pop, kPlain);
  for (std::size_t a : fronts[0]) {
    for (const Individual& other : pop) {
      EXPECT_FALSE(dominates(other, pop[a]));
    }
  }
}

TEST(NondominatedSort, LowerFrontsDominatedBySomeEarlierMember) {
  Rng rng(7);
  Population pop;
  for (int i = 0; i < 50; ++i) {
    pop.push_back(ind(rng.next_double(), rng.next_double(),
                      rng.next_double()));
  }
  const auto fronts = nondominated_sort(pop, kPlain);
  for (std::size_t f = 1; f < fronts.size(); ++f) {
    for (std::size_t idx : fronts[f]) {
      bool dominated_by_prev = false;
      for (std::size_t prev : fronts[f - 1]) {
        if (dominates(pop[prev], pop[idx])) {
          dominated_by_prev = true;
          break;
        }
      }
      EXPECT_TRUE(dominated_by_prev);
    }
  }
}

TEST(NondominatedSort, ConstrainedModeSeparatesInfeasible) {
  Population pop = {ind(1, 1, 1, 3), ind(5, 5, 5, 0), ind(2, 2, 2, 1)};
  const auto fronts = nondominated_sort(pop, kConstrained);
  EXPECT_EQ(pop[1].rank, 0u);  // feasible first
  EXPECT_EQ(pop[2].rank, 1u);  // 1 violation
  EXPECT_EQ(pop[0].rank, 2u);  // 3 violations
  EXPECT_EQ(fronts.size(), 3u);
}

TEST(Crowding, BoundariesAreInfinite) {
  Population pop = {ind(1, 9, 5), ind(2, 8, 5), ind(3, 7, 5), ind(4, 6, 5)};
  std::vector<std::size_t> front = {0, 1, 2, 3};
  assign_crowding_distance(pop, front);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(pop[0].crowding, kInf);
  EXPECT_EQ(pop[3].crowding, kInf);
  EXPECT_GT(pop[1].crowding, 0.0);
  EXPECT_LT(pop[1].crowding, kInf);
}

TEST(Crowding, TinyFrontsAllInfinite) {
  Population pop = {ind(1, 1, 1), ind(2, 2, 2)};
  std::vector<std::size_t> front = {0, 1};
  assign_crowding_distance(pop, front);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(pop[0].crowding, kInf);
  EXPECT_EQ(pop[1].crowding, kInf);
}

TEST(Crowding, IsolatedPointGetsLargerDistance) {
  // Points evenly spaced except one isolated in the middle axis.
  Population pop = {ind(0, 0, 0), ind(1, 1, 1), ind(5, 5, 5),
                    ind(9, 9, 9), ind(10, 10, 10)};
  std::vector<std::size_t> front = {0, 1, 2, 3, 4};
  assign_crowding_distance(pop, front);
  // Middle point (index 2) spans a wide gap; its crowding beats its
  // immediate neighbours'.
  EXPECT_GT(pop[2].crowding, pop[1].crowding);
  EXPECT_GT(pop[2].crowding, pop[3].crowding);
}

TEST(Crowding, DegenerateAxisIgnored) {
  // All identical on every axis: no spread, finite zero distances except
  // boundaries.
  Population pop = {ind(1, 1, 1), ind(1, 1, 1), ind(1, 1, 1)};
  std::vector<std::size_t> front = {0, 1, 2};
  assign_crowding_distance(pop, front);
  EXPECT_EQ(pop[1].crowding, 0.0);
}

}  // namespace
}  // namespace iaas
