// Tabu list, the Fig. 5/6 repair operator, and the standalone tabu
// search.
#include <gtest/gtest.h>

#include "model/constraint_checker.h"
#include "model/objectives.h"
#include "tabu/repair.h"
#include "tabu/tabu_list.h"
#include "tabu/tabu_search.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;
using test::make_random_instance;

TEST(TabuList, ForbidsAndExpires) {
  TabuList tabu(2);
  tabu.forbid(1, 10);
  tabu.forbid(2, 20);
  EXPECT_TRUE(tabu.is_tabu(1, 10));
  EXPECT_TRUE(tabu.is_tabu(2, 20));
  EXPECT_FALSE(tabu.is_tabu(1, 20));
  tabu.forbid(3, 30);  // evicts the oldest (1,10)
  EXPECT_FALSE(tabu.is_tabu(1, 10));
  EXPECT_TRUE(tabu.is_tabu(3, 30));
  EXPECT_EQ(tabu.size(), 2u);
}

TEST(TabuList, DuplicateForbidDoesNotGrow) {
  TabuList tabu(4);
  tabu.forbid(1, 1);
  tabu.forbid(1, 1);
  EXPECT_EQ(tabu.size(), 1u);
}

TEST(TabuList, ZeroTenureNeverForbids) {
  TabuList tabu(0);
  tabu.forbid(1, 1);
  EXPECT_FALSE(tabu.is_tabu(1, 1));
  EXPECT_EQ(tabu.size(), 0u);
}

TEST(TabuList, ClearEmpties) {
  TabuList tabu(4);
  tabu.forbid(1, 1);
  tabu.clear();
  EXPECT_FALSE(tabu.is_tabu(1, 1));
  EXPECT_EQ(tabu.size(), 0u);
}

TEST(TabuRepair, FixesOverloadedServer) {
  // Both VMs crammed onto server 0 (16 cpu > 10); a neighbour is free.
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{8.0, 2.0, 2.0}, {8.0, 2.0, 2.0}});
  TabuRepair repair(inst);
  Rng rng(1);
  std::vector<std::int32_t> genes = {0, 0};
  const std::uint32_t remaining = repair.repair(genes, rng);
  EXPECT_EQ(remaining, 0u);
  EXPECT_TRUE(
      ConstraintChecker(inst).check(Placement(genes)).feasible());
  // One VM moved, one stayed (the refinement: shed only until it fits).
  EXPECT_NE(genes[0], genes[1]);
}

TEST(TabuRepair, FixesSameServerGroup) {
  const Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kSameServer, {0, 1}}});
  TabuRepair repair(inst);
  Rng rng(2);
  std::vector<std::int32_t> genes = {0, 2};
  EXPECT_EQ(repair.repair(genes, rng), 0u);
  EXPECT_EQ(genes[0], genes[1]);
}

TEST(TabuRepair, FixesDifferentServersGroup) {
  const Instance inst = make_instance(
      1, 4, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kDifferentServers, {0, 1, 2}}});
  TabuRepair repair(inst);
  Rng rng(3);
  std::vector<std::int32_t> genes = {1, 1, 1};
  EXPECT_EQ(repair.repair(genes, rng), 0u);
  EXPECT_NE(genes[0], genes[1]);
  EXPECT_NE(genes[1], genes[2]);
  EXPECT_NE(genes[0], genes[2]);
}

TEST(TabuRepair, FixesDifferentDatacentersGroup) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kDifferentDatacenters, {0, 1}}});
  TabuRepair repair(inst);
  Rng rng(4);
  std::vector<std::int32_t> genes = {0, 1};  // both DC 0
  EXPECT_EQ(repair.repair(genes, rng), 0u);
  const auto dc0 = inst.infra.datacenter_of(static_cast<std::size_t>(genes[0]));
  const auto dc1 = inst.infra.datacenter_of(static_cast<std::size_t>(genes[1]));
  EXPECT_NE(dc0, dc1);
}

TEST(TabuRepair, FixesSameDatacenterGroup) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kSameDatacenter, {0, 1, 2}}});
  TabuRepair repair(inst);
  Rng rng(5);
  std::vector<std::int32_t> genes = {0, 1, 3};  // VM 2 in DC 1
  EXPECT_EQ(repair.repair(genes, rng), 0u);
  const auto dc = inst.infra.datacenter_of(static_cast<std::size_t>(genes[0]));
  for (std::int32_t g : genes) {
    EXPECT_EQ(inst.infra.datacenter_of(static_cast<std::size_t>(g)), dc);
  }
}

TEST(TabuRepair, ReassemblesScatteredSameServerGroup) {
  // Regression: a 3-member same-server group scattered over three hosts
  // cannot be fixed by member-at-a-time moves (the first mover is always
  // invalid against its unmoved peers) — the repair must relocate the
  // group atomically.
  const Instance inst = make_instance(
      1, 4, {10.0, 10.0, 10.0},
      {{2.0, 2.0, 2.0}, {2.0, 2.0, 2.0}, {2.0, 2.0, 2.0}},
      {{RelationKind::kSameServer, {0, 1, 2}}});
  TabuRepair repair(inst);
  Rng rng(41);
  std::vector<std::int32_t> genes = {0, 1, 2};  // fully scattered
  EXPECT_EQ(repair.repair(genes, rng), 0u);
  EXPECT_EQ(genes[0], genes[1]);
  EXPECT_EQ(genes[1], genes[2]);
}

TEST(TabuRepair, MovesSatisfiedGroupOffTooSmallServer) {
  // Regression: a *satisfied* same-server group overloading a small host
  // deadlocks individual shedding (each member's solo move would break
  // the relation) — the capacity repair must relocate the whole group.
  FabricConfig fc;
  fc.datacenters = 1;
  fc.leaves_per_dc = 1;
  fc.servers_per_leaf = 2;
  std::vector<Server> servers = {
      test::make_server(0, {10.0, 10.0, 10.0}),   // too small for the pair
      test::make_server(0, {30.0, 30.0, 30.0})};  // big enough
  RequestSet requests;
  requests.vms = {test::make_vm({8.0, 8.0, 8.0}),
                  test::make_vm({8.0, 8.0, 8.0})};
  requests.constraints.push_back({RelationKind::kSameServer, {0, 1}});
  Instance inst(Infrastructure(fc, std::move(servers)),
                std::move(requests));

  TabuRepair repair(inst);
  Rng rng(43);
  std::vector<std::int32_t> genes = {0, 0};  // together but overloading
  EXPECT_EQ(repair.repair(genes, rng), 0u);
  EXPECT_EQ(genes[0], 1);  // whole group moved to the big server
  EXPECT_EQ(genes[1], 1);
}

TEST(TabuRepair, FeasibleInputUntouched) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  TabuRepair repair(inst);
  Rng rng(6);
  std::vector<std::int32_t> genes = {0, 1};
  const auto original = genes;
  EXPECT_EQ(repair.repair(genes, rng), 0u);
  EXPECT_EQ(genes, original);
}

TEST(TabuRepair, ImpossibleInstanceReportsRemainingViolations) {
  // Total demand exceeds total capacity: full repair cannot exist.
  const Instance inst = make_instance(
      1, 1, {10.0, 10.0, 10.0}, {{8.0, 8.0, 8.0}, {8.0, 8.0, 8.0}});
  TabuRepair repair(inst);
  Rng rng(7);
  std::vector<std::int32_t> genes = {0, 0};
  EXPECT_GT(repair.repair(genes, rng), 0u);
}

// Property: repair output on generated scenarios is always at least as
// feasible as the input, and typically fully feasible.
class TabuRepairProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TabuRepairProperty, NeverIncreasesViolations) {
  const Instance inst = make_random_instance(GetParam(), 16, 48);
  const ConstraintChecker checker(inst);
  TabuRepair repair(inst);
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::int32_t> genes(inst.n());
    for (auto& g : genes) {
      g = static_cast<std::int32_t>(rng.uniform_index(inst.m()));
    }
    const std::uint32_t before =
        checker.check(Placement(genes)).total();
    const std::uint32_t after = repair.repair(genes, rng);
    EXPECT_LE(after, before);
    EXPECT_EQ(after, checker.check(Placement(genes)).total());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TabuRepairProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(TabuRepair, RepairStateMatchesGenesEntryPoint) {
  // Both entry points must walk identically for the same RNG stream: the
  // fused pipeline relies on repair_state(kFull) reproducing exactly the
  // placement that repair() produces through its private kViolationsOnly
  // state.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance inst = make_random_instance(seed + 100, 8, 32);
    TabuRepair repair(inst);

    std::vector<std::int32_t> genes(inst.n());
    Rng gene_rng(seed);
    for (std::int32_t& g : genes) {
      g = static_cast<std::int32_t>(
          gene_rng.uniform_int(0, static_cast<std::int64_t>(inst.m()) - 1));
    }

    std::vector<std::int32_t> via_genes = genes;
    Rng rng_a(seed + 1);
    const std::uint32_t remaining_a = repair.repair(via_genes, rng_a);

    PlacementState state(inst, {}, StateTracking::kFull);
    state.rebuild(genes);
    Rng rng_b(seed + 1);
    const std::uint32_t remaining_b = repair.repair_state(state, rng_b);

    EXPECT_EQ(remaining_a, remaining_b);
    EXPECT_EQ(via_genes, state.placement().genes());
    EXPECT_EQ(state.total_violations(), remaining_b);
  }
}

TEST(TabuRepair, RepairStateAccumulatorsMatchFreshEvaluation) {
  // Fused repair-as-evaluation invariant: after the walk, the state's
  // objective accumulators agree with a from-scratch evaluation of the
  // repaired placement.
  const Instance inst = make_random_instance(222, 8, 40);
  TabuRepair repair(inst);
  PlacementState state(inst, {}, StateTracking::kFull);
  std::vector<std::int32_t> genes(inst.n(), 0);  // everything on server 0
  state.rebuild(genes);
  Rng rng(5);
  repair.repair_state(state, rng);

  Evaluator fresh(inst);
  const Evaluation full = fresh.evaluate(state.placement());
  constexpr double kTol = 1e-7;
  EXPECT_NEAR(state.objectives().usage_cost, full.objectives.usage_cost,
              kTol);
  EXPECT_NEAR(state.objectives().downtime_cost,
              full.objectives.downtime_cost, kTol);
  EXPECT_NEAR(state.objectives().migration_cost,
              full.objectives.migration_cost, kTol);
  EXPECT_EQ(state.total_violations(), full.violations.total());
}

TEST(TabuSearch, ImprovesCostAndStaysFeasible) {
  const Instance inst = make_random_instance(21, 8, 24);
  const ConstraintChecker checker(inst);
  // Start from a deliberately spread-out feasible placement.
  Placement start(inst.n());
  Matrix<double> used(inst.m(), inst.h());
  for (std::size_t k = 0; k < inst.n(); ++k) {
    for (std::size_t j = 0; j < inst.m(); ++j) {
      const std::size_t cand = (k + j) % inst.m();
      if (checker.is_valid_allocation(start, used, k, cand)) {
        start.assign(k, static_cast<std::int32_t>(cand));
        for (std::size_t l = 0; l < inst.h(); ++l) {
          used(cand, l) += inst.requests.vms[k].demand[l];
        }
        break;
      }
    }
  }
  ASSERT_TRUE(checker.check(start).feasible());

  Evaluator evaluator(inst);
  const double start_cost = evaluator.objectives(start).aggregate();

  TabuSearch search(inst);
  Rng rng(22);
  const TabuSearchResult result = search.improve(start, rng);
  EXPECT_LE(result.best_objectives.aggregate(), start_cost);
  EXPECT_TRUE(checker.check(result.best).feasible());
  EXPECT_GT(result.iterations, 0u);
}

TEST(TabuSearch, NoValidMovesTerminates) {
  // Single server: no relocation possible; search must stop quickly.
  const Instance inst =
      make_instance(1, 1, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  Placement start(1);
  start.assign(0, 0);
  TabuSearchOptions options;
  options.max_iterations = 1000;
  options.stall_limit = 5;
  TabuSearch search(inst, options);
  Rng rng(23);
  const TabuSearchResult result = search.improve(start, rng);
  EXPECT_LE(result.iterations, 1000u);
  EXPECT_EQ(result.best.server_of(0), 0);
}

}  // namespace
}  // namespace iaas
