// Whole-instance validation (untrusted scenario files).
#include "model/validate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/test_util.h"
#include "workload/generator.h"

namespace iaas {
namespace {

using test::make_instance;

TEST(Validate, CleanInstanceHasNoFindings) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {2.0, 2.0, 2.0}},
      {{RelationKind::kDifferentDatacenters, {0, 1}}});
  EXPECT_TRUE(validate_instance(inst).empty());
}

TEST(Validate, GeneratedScenariosAreClean) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    ScenarioConfig cfg = ScenarioConfig::paper_scale(32);
    cfg.preplaced_fraction = 0.3;
    const Instance inst = ScenarioGenerator(cfg).generate(seed);
    const auto findings = validate_instance(inst);
    EXPECT_TRUE(findings.empty())
        << "seed " << seed << ": " << findings.front();
  }
}

TEST(Validate, MaxLoadAtOneRejectedBeforeEq24Singularity) {
  // First defense layer: a knee at 1.0 (the Eq. 24 division by 1 - L^M
  // blows up there) never even reaches the objective model — the record
  // fails range validation and Infrastructure refuses to build.
  const Server bad = test::make_server(0, {10.0, 10.0, 10.0}, 10.0, 1.0,
                                       1.0, /*max_load=*/1.0);
  EXPECT_FALSE(bad.valid(3));

  FabricConfig fc;
  fc.datacenters = 1;
  fc.leaves_per_dc = 1;
  fc.servers_per_leaf = 1;
  fc.spines_per_dc = 2;
  fc.cores = 2;
  EXPECT_DEATH({ Infrastructure infra(fc, {bad}); }, "fails validation");
}

TEST(Validate, NanMaxLoadFlagged) {
  // NaN sails through Server::valid()'s range compares (both orderings
  // are false), so the singularity screen must catch it explicitly.
  FabricConfig fc;
  fc.datacenters = 1;
  fc.leaves_per_dc = 1;
  fc.servers_per_leaf = 1;
  fc.spines_per_dc = 2;
  fc.cores = 2;
  Server server = test::make_server(0, {10.0, 10.0, 10.0});
  server.max_load[1] = std::nan("");
  RequestSet requests;
  requests.vms.push_back(test::make_vm({1.0, 1.0, 1.0}));
  const Instance inst(Infrastructure(fc, {server}), std::move(requests));
  const auto findings = validate_instance(inst);
  bool flagged = false;
  for (const std::string& f : findings) {
    if (f.find("singularity") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(Validate, OversizedVmFlagged) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{99.0, 1.0, 1.0}});
  const auto findings = validate_instance(inst);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("vm 0"), std::string::npos);
  EXPECT_NE(findings[0].find("exceeds every server"), std::string::npos);
}

TEST(Validate, UnsatisfiableSameServerGroupFlagged) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{6.0, 1.0, 1.0}, {6.0, 1.0, 1.0}},
      {{RelationKind::kSameServer, {0, 1}}});
  const auto findings = validate_instance(inst);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].find("same-server group"), std::string::npos);
}

TEST(Validate, OversizedDifferentDatacentersGroupFlagged) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kDifferentDatacenters, {0, 1, 2}}});
  const auto findings = validate_instance(inst);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].find("exceeds 2 datacenters"), std::string::npos);
}

TEST(Validate, ConflictingGroupsFlagged) {
  const Instance inst = make_instance(
      1, 4, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kSameServer, {0, 1}},
       {RelationKind::kDifferentServers, {0, 1}}});
  const auto findings = validate_instance(inst);
  ASSERT_FALSE(findings.empty());
  bool found = false;
  for (const std::string& f : findings) {
    found = found || f.find("conflicting") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, BadPreviousPlacementFlagged) {
  Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  inst.previous.assign(0, 99);  // unknown server
  const auto findings = validate_instance(inst);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].find("unknown server"), std::string::npos);
}

TEST(Validate, InfeasiblePreviousPlacementFlagged) {
  Instance inst = make_instance(
      1, 1, {10.0, 10.0, 10.0}, {{6.0, 6.0, 6.0}, {6.0, 6.0, 6.0}});
  inst.previous.assign(0, 0);
  inst.previous.assign(1, 0);  // 12 > 10
  const auto findings = validate_instance(inst);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].find("violates constraints"), std::string::npos);
}

}  // namespace
}  // namespace iaas
