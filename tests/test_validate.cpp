// Whole-instance validation (untrusted scenario files).
#include "model/validate.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/generator.h"

namespace iaas {
namespace {

using test::make_instance;

TEST(Validate, CleanInstanceHasNoFindings) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {2.0, 2.0, 2.0}},
      {{RelationKind::kDifferentDatacenters, {0, 1}}});
  EXPECT_TRUE(validate_instance(inst).empty());
}

TEST(Validate, GeneratedScenariosAreClean) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    ScenarioConfig cfg = ScenarioConfig::paper_scale(32);
    cfg.preplaced_fraction = 0.3;
    const Instance inst = ScenarioGenerator(cfg).generate(seed);
    const auto findings = validate_instance(inst);
    EXPECT_TRUE(findings.empty())
        << "seed " << seed << ": " << findings.front();
  }
}

TEST(Validate, OversizedVmFlagged) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{99.0, 1.0, 1.0}});
  const auto findings = validate_instance(inst);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("vm 0"), std::string::npos);
  EXPECT_NE(findings[0].find("exceeds every server"), std::string::npos);
}

TEST(Validate, UnsatisfiableSameServerGroupFlagged) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{6.0, 1.0, 1.0}, {6.0, 1.0, 1.0}},
      {{RelationKind::kSameServer, {0, 1}}});
  const auto findings = validate_instance(inst);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].find("same-server group"), std::string::npos);
}

TEST(Validate, OversizedDifferentDatacentersGroupFlagged) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kDifferentDatacenters, {0, 1, 2}}});
  const auto findings = validate_instance(inst);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].find("exceeds 2 datacenters"), std::string::npos);
}

TEST(Validate, ConflictingGroupsFlagged) {
  const Instance inst = make_instance(
      1, 4, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kSameServer, {0, 1}},
       {RelationKind::kDifferentServers, {0, 1}}});
  const auto findings = validate_instance(inst);
  ASSERT_FALSE(findings.empty());
  bool found = false;
  for (const std::string& f : findings) {
    found = found || f.find("conflicting") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, BadPreviousPlacementFlagged) {
  Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  inst.previous.assign(0, 99);  // unknown server
  const auto findings = validate_instance(inst);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].find("unknown server"), std::string::npos);
}

TEST(Validate, InfeasiblePreviousPlacementFlagged) {
  Instance inst = make_instance(
      1, 1, {10.0, 10.0, 10.0}, {{6.0, 6.0, 6.0}, {6.0, 6.0, 6.0}});
  inst.previous.assign(0, 0);
  inst.previous.assign(1, 0);  // 12 > 10
  const auto findings = validate_instance(inst);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].find("violates constraints"), std::string::npos);
}

}  // namespace
}  // namespace iaas
