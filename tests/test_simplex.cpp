// Two-phase simplex and the LP relaxation lower bound.
#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "lp/cp_solver.h"
#include "lp/lin_model.h"
#include "model/objectives.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

LinExpr expr(std::initializer_list<std::pair<std::uint32_t, double>> terms) {
  LinExpr e;
  for (const auto& [var, coeff] : terms) {
    e.add({var}, coeff);
  }
  return e;
}

TEST(Simplex, TextbookMaximisation) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18  (Hillier/Lieberman)
  // -> x = 2, y = 6, objective 36.  As minimisation of the negation.
  SimplexSolver lp(2);
  lp.set_objective({0}, -3.0);
  lp.set_objective({1}, -5.0);
  lp.add_constraint(expr({{0, 1.0}}), Relation::kLessEqual, 4.0);
  lp.add_constraint(expr({{1, 2.0}}), Relation::kLessEqual, 12.0);
  lp.add_constraint(expr({{0, 3.0}, {1, 2.0}}), Relation::kLessEqual, 18.0);
  const LpSolution s = lp.solve();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-9);
  EXPECT_NEAR(s.values[0], 2.0, 1e-9);
  EXPECT_NEAR(s.values[1], 6.0, 1e-9);
}

TEST(Simplex, EqualityAndGreaterEqual) {
  // min x + 2y st x + y = 10, x >= 3  -> x = 10, y = 0? No: y >= 0,
  // minimise x + 2y on x + y = 10 pushes y down: x = 10, y = 0, obj 10.
  SimplexSolver lp(2);
  lp.set_objective({0}, 1.0);
  lp.set_objective({1}, 2.0);
  lp.add_constraint(expr({{0, 1.0}, {1, 1.0}}), Relation::kEqual, 10.0);
  lp.add_constraint(expr({{0, 1.0}}), Relation::kGreaterEqual, 3.0);
  const LpSolution s = lp.solve();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-9);
  EXPECT_NEAR(s.values[0], 10.0, 1e-9);
  EXPECT_NEAR(s.values[1], 0.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  SimplexSolver lp(1);
  lp.set_objective({0}, 1.0);
  lp.add_constraint(expr({{0, 1.0}}), Relation::kLessEqual, 1.0);
  lp.add_constraint(expr({{0, 1.0}}), Relation::kGreaterEqual, 2.0);
  EXPECT_EQ(lp.solve().status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  SimplexSolver lp(1);
  lp.set_objective({0}, -1.0);  // minimise -x with x unbounded above
  lp.add_constraint(expr({{0, 1.0}}), Relation::kGreaterEqual, 0.0);
  EXPECT_EQ(lp.solve().status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalised) {
  // -x <= -5  ==  x >= 5; minimise x -> 5.
  SimplexSolver lp(1);
  lp.set_objective({0}, 1.0);
  lp.add_constraint(expr({{0, -1.0}}), Relation::kLessEqual, -5.0);
  const LpSolution s = lp.solve();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
}

TEST(Simplex, ConstantsFoldIntoRhs) {
  // (x + 3) <= 7 -> x <= 4; minimise -x -> x = 4.
  SimplexSolver lp(1);
  lp.set_objective({0}, -1.0);
  LinExpr e = expr({{0, 1.0}});
  e.add_constant(3.0);
  lp.add_constraint(e, Relation::kLessEqual, 7.0);
  const LpSolution s = lp.solve();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 4.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Redundant constraints inducing degeneracy; Bland's rule must still
  // terminate at the optimum.
  SimplexSolver lp(2);
  lp.set_objective({0}, -1.0);
  lp.set_objective({1}, -1.0);
  lp.add_constraint(expr({{0, 1.0}, {1, 1.0}}), Relation::kLessEqual, 1.0);
  lp.add_constraint(expr({{0, 1.0}, {1, 1.0}}), Relation::kLessEqual, 1.0);
  lp.add_constraint(expr({{0, 1.0}}), Relation::kLessEqual, 1.0);
  const LpSolution s = lp.solve();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-9);
}

TEST(Simplex, StatusNames) {
  EXPECT_EQ(lp_status_name(LpStatus::kOptimal), "optimal");
  EXPECT_EQ(lp_status_name(LpStatus::kInfeasible), "infeasible");
  EXPECT_EQ(lp_status_name(LpStatus::kUnbounded), "unbounded");
  EXPECT_EQ(lp_status_name(LpStatus::kIterationLimit), "iteration-limit");
}

// The relaxation bound must (a) solve, (b) lower-bound the CP solver's
// integral optimum on small instances.
class LpRelaxationBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpRelaxationBound, LowerBoundsIntegralOptimum) {
  const Instance inst = test::make_random_instance(GetParam(), 8, 10);
  const LinModel model(inst);
  const LpSolution relax = solve_lp_relaxation(model);
  ASSERT_EQ(relax.status, LpStatus::kOptimal)
      << lp_status_name(relax.status);

  CpSolver solver(inst);
  CpStats stats;
  const Placement solved = solver.solve(&stats);
  ASSERT_TRUE(stats.found_complete);
  Evaluator evaluator(inst);
  const ObjectiveVector obj = evaluator.objectives(solved);
  const double integral = obj.usage_cost + obj.migration_cost;
  EXPECT_LE(relax.objective, integral + 1e-6);
  // And the bound is meaningful (positive cost for non-empty demand).
  EXPECT_GT(relax.objective, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRelaxationBound,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(LpRelaxation, TightWhenConsolidationIsFree) {
  // One VM, identical servers: the LP can fractionally spread y but the
  // cost of one server's usage is unavoidable; bound equals optimum.
  const Instance inst = test::make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  const LinModel model(inst);
  const LpSolution relax = solve_lp_relaxation(model);
  ASSERT_EQ(relax.status, LpStatus::kOptimal);
  // usage (1.0) + fractional opex (>= demand/capacity * opex).
  EXPECT_GT(relax.objective, 1.0);
}

}  // namespace
}  // namespace iaas
