// Spine-leaf fabric substrate (paper Fig. 1).
#include "topology/fabric.h"

#include <gtest/gtest.h>

#include <tuple>

namespace iaas {
namespace {

FabricConfig small_config() {
  FabricConfig fc;
  fc.datacenters = 2;
  fc.cores = 2;
  fc.spines_per_dc = 2;
  fc.leaves_per_dc = 3;
  fc.servers_per_leaf = 4;
  return fc;
}

TEST(Fabric, CountsMatchConfig) {
  const Fabric fabric(small_config());
  EXPECT_EQ(fabric.datacenter_count(), 2u);
  EXPECT_EQ(fabric.servers_per_datacenter(), 12u);
  EXPECT_EQ(fabric.server_count(), 24u);
  // Nodes: 2 cores + per DC (2 spines + 3 leaves + 12 servers).
  EXPECT_EQ(fabric.nodes().size(), 2u + 2u * (2u + 3u + 12u));
}

TEST(Fabric, LinkCountMatchesClosWiring) {
  const FabricConfig fc = small_config();
  const Fabric fabric(fc);
  // core-spine: cores*spines per DC; spine-leaf: spines*leaves per DC;
  // leaf-server: servers per DC.
  const std::size_t expected =
      fc.datacenters * (fc.cores * fc.spines_per_dc +
                        fc.spines_per_dc * fc.leaves_per_dc +
                        fc.leaves_per_dc * fc.servers_per_leaf);
  EXPECT_EQ(fabric.links().size(), expected);
}

TEST(Fabric, DatacenterOfServerPartitions) {
  const Fabric fabric(small_config());
  for (std::uint32_t s = 0; s < 12; ++s) {
    EXPECT_EQ(fabric.datacenter_of_server(s), 0u);
  }
  for (std::uint32_t s = 12; s < 24; ++s) {
    EXPECT_EQ(fabric.datacenter_of_server(s), 1u);
  }
}

TEST(Fabric, LeafOfServer) {
  const Fabric fabric(small_config());
  EXPECT_EQ(fabric.leaf_of_server(0), 0u);
  EXPECT_EQ(fabric.leaf_of_server(3), 0u);
  EXPECT_EQ(fabric.leaf_of_server(4), 1u);
  EXPECT_EQ(fabric.leaf_of_server(11), 2u);
  EXPECT_EQ(fabric.leaf_of_server(12), 0u);  // first leaf of DC 1
}

TEST(Fabric, ServersOnLeaf) {
  const Fabric fabric(small_config());
  const auto servers = fabric.servers_on_leaf(1, 2);
  ASSERT_EQ(servers.size(), 4u);
  EXPECT_EQ(servers.front(), 12u + 8u);
  EXPECT_EQ(servers.back(), 12u + 11u);
  for (std::uint32_t s : servers) {
    EXPECT_EQ(fabric.datacenter_of_server(s), 1u);
    EXPECT_EQ(fabric.leaf_of_server(s), 2u);
  }
}

TEST(Fabric, HopDistanceTiers) {
  const Fabric fabric(small_config());
  EXPECT_EQ(fabric.hop_distance(0, 0), 0u);   // same server
  EXPECT_EQ(fabric.hop_distance(0, 1), 2u);   // same leaf
  EXPECT_EQ(fabric.hop_distance(0, 5), 4u);   // same DC, other leaf
  EXPECT_EQ(fabric.hop_distance(0, 13), 6u);  // other DC
}

TEST(Fabric, HopDistanceIsSymmetric) {
  const Fabric fabric(small_config());
  for (std::uint32_t a = 0; a < 24; a += 3) {
    for (std::uint32_t b = 0; b < 24; b += 5) {
      EXPECT_EQ(fabric.hop_distance(a, b), fabric.hop_distance(b, a));
    }
  }
}

TEST(Fabric, PathRedundancy) {
  const Fabric fabric(small_config());
  EXPECT_EQ(fabric.path_redundancy(0, 1), 1u);   // shared leaf
  EXPECT_EQ(fabric.path_redundancy(0, 5), 2u);   // one path per spine
  EXPECT_EQ(fabric.path_redundancy(0, 13), 2u);  // min(spines, cores)
}

TEST(Fabric, BisectionBandwidth) {
  const Fabric fabric(small_config());
  // spines * leaves * spine_leaf_gbps = 2 * 3 * 40.
  EXPECT_DOUBLE_EQ(fabric.bisection_bandwidth_gbps(0), 240.0);
}

TEST(Fabric, PathBandwidthBottleneck) {
  FabricConfig fc = small_config();
  fc.leaf_server_gbps = 10.0;
  fc.spine_leaf_gbps = 40.0;
  fc.core_spine_gbps = 5.0;  // artificially starved core
  const Fabric fabric(fc);
  EXPECT_DOUBLE_EQ(fabric.path_bandwidth_gbps(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(fabric.path_bandwidth_gbps(0, 5), 10.0);
  EXPECT_DOUBLE_EQ(fabric.path_bandwidth_gbps(0, 13), 5.0);
  EXPECT_DOUBLE_EQ(fabric.path_bandwidth_gbps(3, 3), 0.0);
}

TEST(Fabric, SummaryMentionsShape) {
  const Fabric fabric(small_config());
  const std::string s = fabric.summary();
  EXPECT_NE(s.find("2 DC"), std::string::npos);
  EXPECT_NE(s.find("24 servers"), std::string::npos);
}

// Parameterised structural sweep: node/server bookkeeping holds across
// fabric shapes.
class FabricShape
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                 std::uint32_t, std::uint32_t>> {
};

TEST_P(FabricShape, StructureConsistent) {
  const auto [dcs, spines, leaves, per_leaf] = GetParam();
  FabricConfig fc;
  fc.datacenters = dcs;
  fc.spines_per_dc = spines;
  fc.leaves_per_dc = leaves;
  fc.servers_per_leaf = per_leaf;
  const Fabric fabric(fc);

  EXPECT_EQ(fabric.server_count(), dcs * leaves * per_leaf);
  // Every server maps back to a consistent (dc, leaf).
  for (std::uint32_t s = 0; s < fabric.server_count(); ++s) {
    const std::uint32_t dc = fabric.datacenter_of_server(s);
    const std::uint32_t leaf = fabric.leaf_of_server(s);
    EXPECT_LT(dc, dcs);
    EXPECT_LT(leaf, leaves);
    const auto on_leaf = fabric.servers_on_leaf(dc, leaf);
    EXPECT_NE(std::find(on_leaf.begin(), on_leaf.end(), s), on_leaf.end());
  }
  // Redundancy between distinct-leaf servers equals the spine count.
  if (leaves >= 2) {
    const std::uint32_t a = 0;
    const std::uint32_t b = per_leaf;  // first server of second leaf
    EXPECT_EQ(fabric.path_redundancy(a, b), spines);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FabricShape,
    ::testing::Values(std::make_tuple(1u, 2u, 2u, 4u),
                      std::make_tuple(2u, 2u, 4u, 8u),
                      std::make_tuple(3u, 4u, 8u, 16u),
                      std::make_tuple(4u, 2u, 1u, 2u),
                      std::make_tuple(2u, 8u, 16u, 4u)));

}  // namespace
}  // namespace iaas
