// Arrival traces (diurnal + bursts), the external Pareto archive, and
// the simulator-trace JSON round trip.
#include <gtest/gtest.h>

#include "algo/nsga_allocators.h"
#include "algo/round_robin.h"
#include "ea/archive.h"
#include "ea/nsga3.h"
#include "io/trace_json.h"
#include "sim/simulator.h"
#include "tests/test_util.h"
#include "workload/trace.h"

namespace iaas {
namespace {

TEST(ArrivalTrace, DiurnalCurvePeaksWhereConfigured) {
  TraceConfig cfg;
  cfg.windows = 24;
  cfg.trough_rate = 5.0;
  cfg.peak_rate = 50.0;
  cfg.peak_window = 14.0;
  const ArrivalTrace trace(cfg, 1);
  EXPECT_NEAR(trace.expected_rate(14), 50.0, 1e-9);
  EXPECT_NEAR(trace.expected_rate(2), 5.0, 1e-9);  // antipode (14-12)
  // Monotone rise toward the peak on one flank.
  EXPECT_LT(trace.expected_rate(8), trace.expected_rate(11));
  EXPECT_LT(trace.expected_rate(11), trace.expected_rate(14));
}

TEST(ArrivalTrace, CountsMatchWindowCount) {
  TraceConfig cfg;
  cfg.windows = 48;
  const ArrivalTrace trace(cfg, 2);
  EXPECT_EQ(trace.counts().size(), 48u);
  EXPECT_EQ(trace.burst_windows().size(), 48u);
  EXPECT_EQ(trace.arrivals(48), trace.arrivals(0));  // wraps
}

TEST(ArrivalTrace, DeterministicPerSeed) {
  TraceConfig cfg;
  const ArrivalTrace a(cfg, 7);
  const ArrivalTrace b(cfg, 7);
  EXPECT_EQ(a.counts(), b.counts());
  const ArrivalTrace c(cfg, 8);
  EXPECT_NE(a.counts(), c.counts());
}

TEST(ArrivalTrace, TotalTracksExpectedVolume) {
  TraceConfig cfg;
  cfg.windows = 200;
  cfg.trough_rate = 10.0;
  cfg.peak_rate = 10.0;  // flat curve: mean 10/window
  cfg.burst_probability = 0.0;
  const ArrivalTrace trace(cfg, 3);
  const double mean = static_cast<double>(trace.total_arrivals()) / 200.0;
  EXPECT_NEAR(mean, 10.0, 1.0);
}

TEST(ArrivalTrace, BurstsAmplifyWindows) {
  TraceConfig cfg;
  cfg.windows = 400;
  cfg.trough_rate = 20.0;
  cfg.peak_rate = 20.0;
  cfg.burst_probability = 0.5;
  cfg.burst_multiplier = 4.0;
  const ArrivalTrace trace(cfg, 4);
  double burst_mean = 0.0;
  double calm_mean = 0.0;
  std::size_t bursts = 0;
  for (std::size_t w = 0; w < cfg.windows; ++w) {
    if (trace.burst_windows()[w]) {
      burst_mean += static_cast<double>(trace.counts()[w]);
      ++bursts;
    } else {
      calm_mean += static_cast<double>(trace.counts()[w]);
    }
  }
  ASSERT_GT(bursts, 50u);
  burst_mean /= static_cast<double>(bursts);
  calm_mean /= static_cast<double>(cfg.windows - bursts);
  EXPECT_GT(burst_mean, 2.0 * calm_mean);
}

TEST(ArrivalTrace, DrivesSimulatorSchedule) {
  TraceConfig tcfg;
  tcfg.windows = 6;
  tcfg.trough_rate = 3.0;
  tcfg.peak_rate = 9.0;
  const ArrivalTrace trace(tcfg, 5);

  SimConfig cfg;
  cfg.windows = 6;
  cfg.departure_probability = 0.0;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.arrival_schedule = trace.counts();
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(11);
  for (std::size_t w = 0; w < 6; ++w) {
    EXPECT_EQ(metrics[w].arrived, trace.counts()[w]);
  }
}

// A horizon with real failure events, retries AND degraded windows: rack
// 0 dies at window 1, a 1 ns deadline truncates the EA every window, and
// overload keeps the retry queue busy.
std::vector<WindowMetrics> eventful_run() {
  SimConfig cfg;
  cfg.windows = 5;
  cfg.arrivals_per_window_mean = 12.0;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.faults.scripted = {{1, /*leaf_level=*/true, 0, /*mttr_windows=*/2,
                          false},
                         {3, false, 9, 1, /*decommission=*/true}};
  cfg.retry.max_attempts = 3;
  cfg.allocator_deadline_seconds = 1e-9;
  EaAllocatorOptions options;
  options.nsga.population_size = 16;
  options.nsga.max_evaluations = 320;
  options.nsga.reference_divisions = 4;
  options.nsga.collect_trace = true;
  CloudSimulator sim(cfg, std::make_unique<Nsga3Allocator>(options));
  return sim.run(29);
}

TEST(SimTraceJson, EmitParseReEmitIsByteIdentical) {
  const std::vector<WindowMetrics> metrics = eventful_run();
  // The scenario must actually exercise what the format claims to carry.
  const SimSummary summary = summarize(metrics);
  ASSERT_GT(summary.fault_events, 0u);
  ASSERT_GT(summary.degraded_windows, 0u);
  bool has_trace = false;
  for (const WindowMetrics& w : metrics) {
    has_trace = has_trace || !w.allocator_trace.empty();
  }
  ASSERT_TRUE(has_trace);

  const Json emitted = sim_trace_to_json(metrics);
  const std::string text = emitted.dump(2);
  const std::vector<WindowMetrics> parsed =
      sim_trace_from_json(Json::parse(text));
  EXPECT_EQ(sim_trace_to_json(parsed).dump(2), text);
  // And the parsed horizon is the same run, not just the same text.
  EXPECT_EQ(deterministic_fingerprint(parsed),
            deterministic_fingerprint(metrics));
  ASSERT_EQ(parsed.size(), metrics.size());
  for (std::size_t w = 0; w < metrics.size(); ++w) {
    EXPECT_EQ(parsed[w].fault_events, metrics[w].fault_events);
    EXPECT_EQ(parsed[w].degrade, metrics[w].degrade);
    EXPECT_EQ(parsed[w].retry_queue_depth, metrics[w].retry_queue_depth);
    EXPECT_DOUBLE_EQ(parsed[w].solve_seconds, metrics[w].solve_seconds);
  }
}

TEST(SimTraceJson, RunTraceRoundTripsThroughJson) {
  telemetry::RunTrace trace;
  trace.label = "nsga3 w2";
  trace.seed = 12345;
  telemetry::GenerationRow row;
  row.generation = 3;
  row.evaluations = 160;
  row.delta_moves = 40;
  row.rebases = 9;
  row.repair_invocations = 80;
  row.front_size = 7;
  row.best_objectives = {1.5, 0.0, 2.25};
  row.seconds_evaluate = 0.015625;  // dyadic: exact through JSON
  trace.rows.push_back(row);
  const Json j = trace_to_json(trace);
  const telemetry::RunTrace back = trace_from_json(j);
  EXPECT_EQ(back.label, trace.label);
  EXPECT_EQ(back.seed, trace.seed);
  ASSERT_EQ(back.rows.size(), 1u);
  EXPECT_EQ(back.rows[0].generation, 3u);
  EXPECT_EQ(back.rows[0].evaluations, 160u);
  EXPECT_EQ(back.rows[0].delta_moves, 40u);
  EXPECT_EQ(back.rows[0].rebases, 9u);
  EXPECT_EQ(back.rows[0].repair_invocations, 80u);
  EXPECT_EQ(back.rows[0].front_size, 7u);
  EXPECT_DOUBLE_EQ(back.rows[0].best_objectives[2], 2.25);
  EXPECT_DOUBLE_EQ(back.rows[0].seconds_evaluate, 0.015625);
  EXPECT_EQ(trace_to_json(back).dump(), j.dump());
}

TEST(SimTraceJson, ShapeErrorsThrow) {
  EXPECT_THROW(sim_trace_from_json(Json::parse(R"({"nope": []})")),
               std::runtime_error);
  EXPECT_THROW(
      sim_trace_from_json(Json::parse(
          R"({"windows": [{"window": 0}]})")),
      std::runtime_error);
  // An empty horizon is a valid document, not a shape error.
  Json empty = Json::object();
  empty["windows"] = Json::array();
  EXPECT_TRUE(sim_trace_from_json(empty).empty());
}

Individual ind(double a, double b, double c, std::uint32_t violations = 0) {
  Individual i;
  i.objectives = {a, b, c};
  i.violations = violations;
  return i;
}

TEST(ParetoArchive, KeepsNondominated) {
  ParetoArchive archive(10);
  EXPECT_TRUE(archive.insert(ind(1, 2, 3)));
  EXPECT_TRUE(archive.insert(ind(3, 2, 1)));
  EXPECT_EQ(archive.size(), 2u);
}

TEST(ParetoArchive, RejectsDominatedAndDuplicates) {
  ParetoArchive archive(10);
  EXPECT_TRUE(archive.insert(ind(1, 1, 1)));
  EXPECT_FALSE(archive.insert(ind(2, 2, 2)));  // dominated
  EXPECT_FALSE(archive.insert(ind(1, 1, 1)));  // duplicate
  EXPECT_EQ(archive.size(), 1u);
}

TEST(ParetoArchive, EntrantEvictsDominatedMembers) {
  ParetoArchive archive(10);
  archive.insert(ind(5, 5, 5));
  archive.insert(ind(6, 4, 5));
  EXPECT_TRUE(archive.insert(ind(1, 1, 1)));  // dominates both
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.members()[0].objectives, (ObjArray{1, 1, 1}));
}

TEST(ParetoArchive, FeasibleBeatsInfeasible) {
  ParetoArchive archive(10);
  archive.insert(ind(1, 1, 1, /*violations=*/3));
  EXPECT_TRUE(archive.insert(ind(9, 9, 9, 0)));
  // The feasible entrant constrained-dominates the infeasible member.
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.members()[0].violations, 0u);
}

TEST(ParetoArchive, CapacityEvictsMostCrowded) {
  ParetoArchive archive(3);
  // Four mutually non-dominated points on a line; the inner ones are the
  // crowded candidates for eviction.
  archive.insert(ind(0, 10, 5));
  archive.insert(ind(10, 0, 5));
  archive.insert(ind(4, 6, 5));
  EXPECT_TRUE(archive.insert(ind(5, 5, 5)));
  EXPECT_EQ(archive.size(), 3u);
  // The boundary points must survive (infinite crowding).
  bool has_low = false;
  bool has_high = false;
  for (const Individual& m : archive.members()) {
    has_low = has_low || m.objectives[0] == 0.0;
    has_high = has_high || m.objectives[0] == 10.0;
  }
  EXPECT_TRUE(has_low);
  EXPECT_TRUE(has_high);
}

TEST(ParetoArchive, EngineIntegration) {
  const Instance inst = test::make_random_instance(17, 8, 16);
  const AllocationProblem problem(inst);
  NsgaConfig cfg;
  cfg.population_size = 16;
  cfg.max_evaluations = 320;
  cfg.reference_divisions = 4;
  cfg.archive_capacity = 50;
  Nsga3 engine(problem, cfg);
  const auto result = engine.run(1);
  EXPECT_FALSE(result.archive.empty());
  EXPECT_LE(result.archive.size(), 50u);
  // Archive members are mutually non-dominated.
  for (const Individual& a : result.archive) {
    for (const Individual& b : result.archive) {
      if (&a != &b) {
        EXPECT_FALSE(constrained_dominates(a, b) &&
                     constrained_dominates(b, a));
      }
    }
  }
  // Per-axis elitism: the archive's minimum on every objective is at
  // least as good as the final front's (axis-boundary members carry
  // infinite crowding, so capacity eviction can never remove them).
  auto axis_min = [](const Population& pop, std::size_t axis) {
    double v = std::numeric_limits<double>::infinity();
    for (const Individual& i : pop) {
      v = std::min(v, i.objectives[axis]);
    }
    return v;
  };
  // The archive is feasibility-first, so compare against the feasible
  // subset of the final front only.
  Population feasible_front;
  for (const Individual& i : result.front) {
    if (i.violations == 0) {
      feasible_front.push_back(i);
    }
  }
  if (!feasible_front.empty()) {
    for (std::size_t axis = 0; axis < 3; ++axis) {
      EXPECT_LE(axis_min(result.archive, axis),
                axis_min(feasible_front, axis) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace iaas
