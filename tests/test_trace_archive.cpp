// Arrival traces (diurnal + bursts) and the external Pareto archive.
#include <gtest/gtest.h>

#include "algo/round_robin.h"
#include "ea/archive.h"
#include "ea/nsga3.h"
#include "sim/simulator.h"
#include "tests/test_util.h"
#include "workload/trace.h"

namespace iaas {
namespace {

TEST(ArrivalTrace, DiurnalCurvePeaksWhereConfigured) {
  TraceConfig cfg;
  cfg.windows = 24;
  cfg.trough_rate = 5.0;
  cfg.peak_rate = 50.0;
  cfg.peak_window = 14.0;
  const ArrivalTrace trace(cfg, 1);
  EXPECT_NEAR(trace.expected_rate(14), 50.0, 1e-9);
  EXPECT_NEAR(trace.expected_rate(2), 5.0, 1e-9);  // antipode (14-12)
  // Monotone rise toward the peak on one flank.
  EXPECT_LT(trace.expected_rate(8), trace.expected_rate(11));
  EXPECT_LT(trace.expected_rate(11), trace.expected_rate(14));
}

TEST(ArrivalTrace, CountsMatchWindowCount) {
  TraceConfig cfg;
  cfg.windows = 48;
  const ArrivalTrace trace(cfg, 2);
  EXPECT_EQ(trace.counts().size(), 48u);
  EXPECT_EQ(trace.burst_windows().size(), 48u);
  EXPECT_EQ(trace.arrivals(48), trace.arrivals(0));  // wraps
}

TEST(ArrivalTrace, DeterministicPerSeed) {
  TraceConfig cfg;
  const ArrivalTrace a(cfg, 7);
  const ArrivalTrace b(cfg, 7);
  EXPECT_EQ(a.counts(), b.counts());
  const ArrivalTrace c(cfg, 8);
  EXPECT_NE(a.counts(), c.counts());
}

TEST(ArrivalTrace, TotalTracksExpectedVolume) {
  TraceConfig cfg;
  cfg.windows = 200;
  cfg.trough_rate = 10.0;
  cfg.peak_rate = 10.0;  // flat curve: mean 10/window
  cfg.burst_probability = 0.0;
  const ArrivalTrace trace(cfg, 3);
  const double mean = static_cast<double>(trace.total_arrivals()) / 200.0;
  EXPECT_NEAR(mean, 10.0, 1.0);
}

TEST(ArrivalTrace, BurstsAmplifyWindows) {
  TraceConfig cfg;
  cfg.windows = 400;
  cfg.trough_rate = 20.0;
  cfg.peak_rate = 20.0;
  cfg.burst_probability = 0.5;
  cfg.burst_multiplier = 4.0;
  const ArrivalTrace trace(cfg, 4);
  double burst_mean = 0.0;
  double calm_mean = 0.0;
  std::size_t bursts = 0;
  for (std::size_t w = 0; w < cfg.windows; ++w) {
    if (trace.burst_windows()[w]) {
      burst_mean += static_cast<double>(trace.counts()[w]);
      ++bursts;
    } else {
      calm_mean += static_cast<double>(trace.counts()[w]);
    }
  }
  ASSERT_GT(bursts, 50u);
  burst_mean /= static_cast<double>(bursts);
  calm_mean /= static_cast<double>(cfg.windows - bursts);
  EXPECT_GT(burst_mean, 2.0 * calm_mean);
}

TEST(ArrivalTrace, DrivesSimulatorSchedule) {
  TraceConfig tcfg;
  tcfg.windows = 6;
  tcfg.trough_rate = 3.0;
  tcfg.peak_rate = 9.0;
  const ArrivalTrace trace(tcfg, 5);

  SimConfig cfg;
  cfg.windows = 6;
  cfg.departure_probability = 0.0;
  cfg.scenario = ScenarioConfig::paper_scale(16);
  cfg.arrival_schedule = trace.counts();
  CloudSimulator sim(cfg, std::make_unique<RoundRobinAllocator>());
  const auto metrics = sim.run(11);
  for (std::size_t w = 0; w < 6; ++w) {
    EXPECT_EQ(metrics[w].arrived, trace.counts()[w]);
  }
}

Individual ind(double a, double b, double c, std::uint32_t violations = 0) {
  Individual i;
  i.objectives = {a, b, c};
  i.violations = violations;
  return i;
}

TEST(ParetoArchive, KeepsNondominated) {
  ParetoArchive archive(10);
  EXPECT_TRUE(archive.insert(ind(1, 2, 3)));
  EXPECT_TRUE(archive.insert(ind(3, 2, 1)));
  EXPECT_EQ(archive.size(), 2u);
}

TEST(ParetoArchive, RejectsDominatedAndDuplicates) {
  ParetoArchive archive(10);
  EXPECT_TRUE(archive.insert(ind(1, 1, 1)));
  EXPECT_FALSE(archive.insert(ind(2, 2, 2)));  // dominated
  EXPECT_FALSE(archive.insert(ind(1, 1, 1)));  // duplicate
  EXPECT_EQ(archive.size(), 1u);
}

TEST(ParetoArchive, EntrantEvictsDominatedMembers) {
  ParetoArchive archive(10);
  archive.insert(ind(5, 5, 5));
  archive.insert(ind(6, 4, 5));
  EXPECT_TRUE(archive.insert(ind(1, 1, 1)));  // dominates both
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.members()[0].objectives, (ObjArray{1, 1, 1}));
}

TEST(ParetoArchive, FeasibleBeatsInfeasible) {
  ParetoArchive archive(10);
  archive.insert(ind(1, 1, 1, /*violations=*/3));
  EXPECT_TRUE(archive.insert(ind(9, 9, 9, 0)));
  // The feasible entrant constrained-dominates the infeasible member.
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.members()[0].violations, 0u);
}

TEST(ParetoArchive, CapacityEvictsMostCrowded) {
  ParetoArchive archive(3);
  // Four mutually non-dominated points on a line; the inner ones are the
  // crowded candidates for eviction.
  archive.insert(ind(0, 10, 5));
  archive.insert(ind(10, 0, 5));
  archive.insert(ind(4, 6, 5));
  EXPECT_TRUE(archive.insert(ind(5, 5, 5)));
  EXPECT_EQ(archive.size(), 3u);
  // The boundary points must survive (infinite crowding).
  bool has_low = false;
  bool has_high = false;
  for (const Individual& m : archive.members()) {
    has_low = has_low || m.objectives[0] == 0.0;
    has_high = has_high || m.objectives[0] == 10.0;
  }
  EXPECT_TRUE(has_low);
  EXPECT_TRUE(has_high);
}

TEST(ParetoArchive, EngineIntegration) {
  const Instance inst = test::make_random_instance(17, 8, 16);
  const AllocationProblem problem(inst);
  NsgaConfig cfg;
  cfg.population_size = 16;
  cfg.max_evaluations = 320;
  cfg.reference_divisions = 4;
  cfg.archive_capacity = 50;
  Nsga3 engine(problem, cfg);
  const auto result = engine.run(1);
  EXPECT_FALSE(result.archive.empty());
  EXPECT_LE(result.archive.size(), 50u);
  // Archive members are mutually non-dominated.
  for (const Individual& a : result.archive) {
    for (const Individual& b : result.archive) {
      if (&a != &b) {
        EXPECT_FALSE(constrained_dominates(a, b) &&
                     constrained_dominates(b, a));
      }
    }
  }
  // Per-axis elitism: the archive's minimum on every objective is at
  // least as good as the final front's (axis-boundary members carry
  // infinite crowding, so capacity eviction can never remove them).
  auto axis_min = [](const Population& pop, std::size_t axis) {
    double v = std::numeric_limits<double>::infinity();
    for (const Individual& i : pop) {
      v = std::min(v, i.objectives[axis]);
    }
    return v;
  };
  // The archive is feasibility-first, so compare against the feasible
  // subset of the final front only.
  Population feasible_front;
  for (const Individual& i : result.front) {
    if (i.violations == 0) {
      feasible_front.push_back(i);
    }
  }
  if (!feasible_front.empty()) {
    for (std::size_t axis = 0; axis < 3; ++axis) {
      EXPECT_LE(axis_min(result.archive, axis),
                axis_min(feasible_front, axis) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace iaas
