// Deterministic robustness fuzzing of the JSON parser: arbitrary byte
// mutations of valid documents and random garbage must either parse or
// throw std::runtime_error — never crash, hang, or corrupt memory.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "io/json.h"
#include "io/serialize.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

// Parse attempt that maps every outcome to "ok" / "rejected".
bool parses(const std::string& text) {
  try {
    (void)Json::parse(text);
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

class JsonMutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonMutationFuzz, MutatedDocumentsNeverCrash) {
  const Instance inst = test::make_random_instance(GetParam(), 8, 8);
  const std::string base = instance_to_json(inst).dump();
  Rng rng(GetParam() * 131 + 7);

  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = base;
    const std::size_t edits = rng.uniform_index(4) + 1;
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.uniform_index(mutated.size());
      switch (rng.uniform_index(3)) {
        case 0:  // flip a byte
          mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        default:  // insert a structural byte
          mutated.insert(pos, 1, "{}[],:\"0"[rng.uniform_index(8)]);
          break;
      }
      if (mutated.empty()) {
        break;
      }
    }
    (void)parses(mutated);  // must not crash either way
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonMutationFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(JsonFuzz, RandomGarbageRejectedGracefully) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage;
    const std::size_t len = rng.uniform_index(64);
    for (std::size_t i = 0; i < len; ++i) {
      garbage += static_cast<char>(rng.uniform_int(1, 255));
    }
    (void)parses(garbage);  // must not crash
  }
  SUCCEED();
}

TEST(JsonFuzz, DeeplyNestedArraysHandled) {
  // The parser recurses, so nesting is capped at Json::kMaxParseDepth:
  // the deepest legal document parses, one level past the cap (and a
  // 10k-deep bomb) throws a clean parse error instead of overflowing
  // the stack — the seed parser crashed under ASan on this input.
  const auto nested = [](int depth) {
    std::string text(static_cast<std::size_t>(depth), '[');
    text += '1';
    text.append(static_cast<std::size_t>(depth), ']');
    return text;
  };
  EXPECT_TRUE(parses(nested(Json::kMaxParseDepth)));
  EXPECT_FALSE(parses(nested(Json::kMaxParseDepth + 1)));
  EXPECT_FALSE(parses(nested(10000)));
}

TEST(JsonFuzz, HugeNumbersAndExponents) {
  EXPECT_TRUE(parses("1e308"));
  EXPECT_TRUE(parses("-1e-308"));
  // Overflow past double range is a parse error — a non-finite value must
  // never exist inside a Json, so it can never be dumped as illegal text.
  EXPECT_FALSE(parses("1e999"));
  EXPECT_FALSE(parses("-1e999"));
}

TEST(JsonFuzzDeathTest, NonFiniteNumberConstructionAborts) {
  // Regression for the %.17g nan/inf emission bug: screening now happens
  // at construction, fail-loud via IAAS_EXPECT.
  EXPECT_DEATH((void)Json::number(std::numeric_limits<double>::quiet_NaN()),
               "non-finite");
  EXPECT_DEATH((void)Json::number(std::numeric_limits<double>::infinity()),
               "non-finite");
}

TEST(JsonFuzz, IntegerLexemesRoundTripExactly) {
  // Counters and seeds past 2^53 must survive text round-trips bit-exactly.
  const std::uint64_t big = (1ull << 63) + 12345ull;
  const Json doc = Json::parse(std::to_string(big));
  EXPECT_TRUE(doc.holds_unsigned());
  EXPECT_EQ(doc.as_uint64(), big);
  EXPECT_EQ(Json::parse(doc.dump()).as_uint64(), big);

  const std::int64_t negative = -9007199254740995ll;  // < -(2^53)
  const Json neg = Json::parse(std::to_string(negative));
  EXPECT_TRUE(neg.holds_signed());
  EXPECT_EQ(neg.as_int64(), negative);
  EXPECT_EQ(Json::parse(neg.dump()).as_int64(), negative);

  // Cross-representation equality: the integer lexeme 7 equals 7.0.
  EXPECT_EQ(Json::parse("7"), Json::number(7.0));
  EXPECT_EQ(Json::parse("-3"), Json::number(-3.0));
  // But a 64-bit value the double can't hold is not equal to its rounding.
  EXPECT_FALSE(Json::parse(std::to_string(big)) ==
               Json::number(static_cast<double>(big)));

  // "-0" keeps its sign through a round-trip (stored as double -0.0).
  const Json minus_zero = Json::parse("-0");
  EXPECT_EQ(minus_zero.dump(), "-0");
  EXPECT_TRUE(std::signbit(minus_zero.as_number()));

  // Exact-read guards: truncating reads throw instead of silently lying.
  EXPECT_THROW((void)Json::number(1.5).as_uint64(), std::runtime_error);
  EXPECT_THROW((void)Json::parse("-1").as_uint64(), std::runtime_error);
  EXPECT_THROW((void)Json::parse("18446744073709551615").as_int64(),
               std::runtime_error);
  EXPECT_EQ(Json::parse("18446744073709551615").as_uint64(),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(JsonFuzz, MutatedInstanceDeserialisationNeverCrashes) {
  // One level up: even when the JSON parses, instance_from_json on a
  // mutated document must throw rather than build a corrupt model.
  const Instance inst = test::make_random_instance(5, 8, 8);
  const std::string base = instance_to_json(inst).dump();
  Rng rng(2024);
  int rebuilt = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = base;
    const std::size_t pos = rng.uniform_index(mutated.size());
    mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    try {
      const Instance restored = instance_from_json(Json::parse(mutated));
      ++rebuilt;  // mutation was benign (e.g. inside a number)
    } catch (const std::exception&) {
      // rejected — fine
    }
  }
  SUCCEED() << rebuilt << " mutations were benign";
}

}  // namespace
}  // namespace iaas
