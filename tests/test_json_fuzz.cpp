// Deterministic robustness fuzzing of the JSON parser: arbitrary byte
// mutations of valid documents and random garbage must either parse or
// throw std::runtime_error — never crash, hang, or corrupt memory.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "io/json.h"
#include "io/serialize.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

// Parse attempt that maps every outcome to "ok" / "rejected".
bool parses(const std::string& text) {
  try {
    (void)Json::parse(text);
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

class JsonMutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonMutationFuzz, MutatedDocumentsNeverCrash) {
  const Instance inst = test::make_random_instance(GetParam(), 8, 8);
  const std::string base = instance_to_json(inst).dump();
  Rng rng(GetParam() * 131 + 7);

  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = base;
    const std::size_t edits = rng.uniform_index(4) + 1;
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.uniform_index(mutated.size());
      switch (rng.uniform_index(3)) {
        case 0:  // flip a byte
          mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        default:  // insert a structural byte
          mutated.insert(pos, 1, "{}[],:\"0"[rng.uniform_index(8)]);
          break;
      }
      if (mutated.empty()) {
        break;
      }
    }
    (void)parses(mutated);  // must not crash either way
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonMutationFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(JsonFuzz, RandomGarbageRejectedGracefully) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage;
    const std::size_t len = rng.uniform_index(64);
    for (std::size_t i = 0; i < len; ++i) {
      garbage += static_cast<char>(rng.uniform_int(1, 255));
    }
    (void)parses(garbage);  // must not crash
  }
  SUCCEED();
}

TEST(JsonFuzz, DeeplyNestedArraysHandled) {
  // 10k-deep nesting: parse must either succeed or throw cleanly (our
  // parser recurses, so this also bounds stack behaviour at a depth that
  // fits default stacks).
  std::string deep;
  for (int i = 0; i < 10000; ++i) {
    deep += '[';
  }
  deep += '1';
  for (int i = 0; i < 10000; ++i) {
    deep += ']';
  }
  EXPECT_TRUE(parses(deep));
}

TEST(JsonFuzz, HugeNumbersAndExponents) {
  EXPECT_TRUE(parses("1e308"));
  EXPECT_TRUE(parses("-1e-308"));
  // Overflow to inf parses at strtod level; dumping a non-finite value is
  // the rejected direction.
  const Json inf = Json::parse("1e999");
  EXPECT_THROW((void)inf.dump(), std::runtime_error);
}

TEST(JsonFuzz, MutatedInstanceDeserialisationNeverCrashes) {
  // One level up: even when the JSON parses, instance_from_json on a
  // mutated document must throw rather than build a corrupt model.
  const Instance inst = test::make_random_instance(5, 8, 8);
  const std::string base = instance_to_json(inst).dump();
  Rng rng(2024);
  int rebuilt = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = base;
    const std::size_t pos = rng.uniform_index(mutated.size());
    mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    try {
      const Instance restored = instance_from_json(Json::parse(mutated));
      ++rebuilt;  // mutation was benign (e.g. inside a number)
    } catch (const std::exception&) {
      // rejected — fine
    }
  }
  SUCCEED() << rebuilt << " mutations were benign";
}

}  // namespace
}  // namespace iaas
