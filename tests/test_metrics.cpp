// Normalized metrics (the paper's future-work cost-per-request metric),
// revenue model, utilization summaries, weighted objectives.
#include "algo/metrics.h"

#include <gtest/gtest.h>

#include "algo/ideal_point.h"
#include "algo/round_robin.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;
using test::make_random_instance;

AllocationResult make_result(const Instance& inst, Placement p) {
  AllocationResult r;
  r.algorithm = "test";
  r.vm_count = inst.n();
  r.placement = std::move(p);
  r.rejected = r.placement.rejected_count();
  Evaluator evaluator(inst);
  r.objectives = evaluator.objectives(r.placement);
  return r;
}

TEST(Metrics, AcceptanceRateAndCostPerRequest) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 2.0, 20.0}, {1.0, 2.0, 20.0}});
  Placement p(2);
  p.assign(0, 0);  // one accepted, one rejected
  const AllocationResult r = make_result(inst, p);
  const NormalizedMetrics m = compute_metrics(inst, r);
  EXPECT_DOUBLE_EQ(m.acceptance_rate, 0.5);
  EXPECT_DOUBLE_EQ(m.cost_per_accepted_request, r.objectives.aggregate());
}

TEST(Metrics, RevenuePricesAcceptedDemandOnly) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{2.0, 4.0, 50.0}, {2.0, 4.0, 50.0}});
  Placement p(2);
  p.assign(0, 0);
  const AllocationResult r = make_result(inst, p);
  PriceModel prices;
  prices.per_cpu_core = 1.0;
  prices.per_ram_gb = 1.0;
  prices.per_disk_gb = 1.0;
  const NormalizedMetrics m = compute_metrics(inst, r, prices);
  EXPECT_DOUBLE_EQ(m.revenue, 2.0 + 4.0 + 50.0);
  EXPECT_DOUBLE_EQ(m.net_profit, m.revenue - r.objectives.aggregate());
}

TEST(Metrics, CostPerDemandedUnitNormalisesAcrossScale) {
  // Same per-VM shape at two scenario scales: the normalized unit cost
  // should land in the same ballpark, unlike the raw total cost.
  RoundRobinAllocator rr;
  const Instance small = make_random_instance(3, 16, 32);
  const Instance large = make_random_instance(3, 64, 128);
  const AllocationResult rs = rr.allocate(small, 1);
  const AllocationResult rl = rr.allocate(large, 1);
  const double unit_small = compute_metrics(small, rs).cost_per_demanded_unit;
  const double unit_large = compute_metrics(large, rl).cost_per_demanded_unit;
  EXPECT_GT(unit_small, 0.0);
  EXPECT_GT(unit_large, 0.0);
  EXPECT_LT(std::abs(unit_small - unit_large) /
                std::max(unit_small, unit_large),
            0.5);  // within 50% of each other despite 4x scale
}

TEST(Metrics, EmptyPlacementZeroes) {
  const Instance inst =
      make_instance(1, 1, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  const AllocationResult r = make_result(inst, Placement(1));
  const NormalizedMetrics m = compute_metrics(inst, r);
  EXPECT_DOUBLE_EQ(m.acceptance_rate, 0.0);
  EXPECT_DOUBLE_EQ(m.cost_per_accepted_request, 0.0);
  EXPECT_DOUBLE_EQ(m.revenue, 0.0);
}

TEST(Utilization, CountsUsedServersAndLoads) {
  const Instance inst = make_instance(
      1, 3, {10.0, 10.0, 10.0}, {{5.0, 2.0, 2.0}, {2.0, 2.0, 2.0}});
  Placement p(2);
  p.assign(0, 0);
  p.assign(1, 0);
  const UtilizationSummary u = compute_utilization(inst, p);
  EXPECT_EQ(u.used_servers, 1u);
  EXPECT_DOUBLE_EQ(u.mean_worst_load, 0.7);  // (5+2)/10 on cpu
  EXPECT_DOUBLE_EQ(u.peak_worst_load, 0.7);
}

TEST(Utilization, PerDatacenterBreakdown) {
  const Instance inst = make_instance(
      2, 1, {10.0, 10.0, 10.0}, {{4.0, 1.0, 1.0}, {8.0, 1.0, 1.0}});
  Placement p(2);
  p.assign(0, 0);  // DC 0
  p.assign(1, 1);  // DC 1
  const UtilizationSummary u = compute_utilization(inst, p);
  ASSERT_EQ(u.per_datacenter_mean_load.size(), 2u);
  EXPECT_DOUBLE_EQ(u.per_datacenter_mean_load[0], 0.4);
  EXPECT_DOUBLE_EQ(u.per_datacenter_mean_load[1], 0.8);
}

TEST(Utilization, EmptyPlatform) {
  const Instance inst =
      make_instance(1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  const UtilizationSummary u = compute_utilization(inst, Placement(1));
  EXPECT_EQ(u.used_servers, 0u);
  EXPECT_DOUBLE_EQ(u.mean_worst_load, 0.0);
}

TEST(WeightedObjectives, AggregateAppliesWeights) {
  ObjectiveVector obj;
  obj.usage_cost = 10.0;
  obj.downtime_cost = 5.0;
  obj.migration_cost = 2.0;
  EXPECT_DOUBLE_EQ(weighted_aggregate(obj, {}), 17.0);  // defaults = 1
  EXPECT_DOUBLE_EQ(weighted_aggregate(obj, {2.0, 0.0, 1.0}), 22.0);
}

TEST(WeightedIdealPoint, WeightsSteerTheChoice) {
  std::vector<Individual> front(2);
  front[0].objectives = {0.0, 1.0, 0.5};  // best on usage
  front[1].objectives = {1.0, 0.0, 0.5};  // best on downtime
  // Caring only about usage picks member 0; only downtime picks 1.
  EXPECT_EQ(select_ideal_point(front, {1.0, 0.0, 0.0}), 0u);
  EXPECT_EQ(select_ideal_point(front, {0.0, 1.0, 0.0}), 1u);
}

}  // namespace
}  // namespace iaas
