// Core model records: Server, VmRequest, Infrastructure, Placement,
// Instance (paper Table I).
#include <gtest/gtest.h>

#include "model/attributes.h"
#include "model/instance.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;
using test::make_server;
using test::make_vm;

TEST(Server, EffectiveCapacityAppliesFactor) {
  Server s = make_server(0, {100.0, 200.0, 300.0});
  s.factor = {0.9, 0.5, 1.0};
  EXPECT_DOUBLE_EQ(s.effective_capacity(0), 90.0);
  EXPECT_DOUBLE_EQ(s.effective_capacity(1), 100.0);
  EXPECT_DOUBLE_EQ(s.effective_capacity(2), 300.0);
}

TEST(Server, ValidAcceptsWellFormed) {
  const Server s = make_server(0, {16.0, 64.0, 1000.0});
  EXPECT_TRUE(s.valid(3));
  EXPECT_FALSE(s.valid(2));  // wrong attribute count
}

TEST(Server, ValidRejectsOutOfRangeValues) {
  Server s = make_server(0, {16.0, 64.0, 1000.0});
  s.factor[1] = 1.5;  // factor must be <= 1
  EXPECT_FALSE(s.valid(3));
  s = make_server(0, {16.0, 64.0, 1000.0});
  s.capacity[0] = 0.0;  // capacity must be positive
  EXPECT_FALSE(s.valid(3));
  s = make_server(0, {16.0, 64.0, 1000.0});
  s.max_load[2] = 1.0;  // L^M in [0,1)
  EXPECT_FALSE(s.valid(3));
  s = make_server(0, {16.0, 64.0, 1000.0});
  s.opex = -1.0;
  EXPECT_FALSE(s.valid(3));
}

TEST(VmRequest, ValidChecksRanges) {
  VmRequest vm = make_vm({2.0, 4.0, 40.0});
  EXPECT_TRUE(vm.valid(3));
  EXPECT_FALSE(vm.valid(4));
  vm.qos_guarantee = 1.0;  // must be < 1
  EXPECT_FALSE(vm.valid(3));
  vm = make_vm({2.0, -1.0, 40.0});
  EXPECT_FALSE(vm.valid(3));
}

TEST(Placement, RejectedByDefault) {
  Placement p(5);
  EXPECT_EQ(p.vm_count(), 5u);
  EXPECT_EQ(p.rejected_count(), 5u);
  EXPECT_EQ(p.assigned_count(), 0u);
  EXPECT_FALSE(p.is_assigned(0));
}

TEST(Placement, AssignAndReject) {
  Placement p(3);
  p.assign(0, 7);
  p.assign(2, 1);
  EXPECT_TRUE(p.is_assigned(0));
  EXPECT_EQ(p.server_of(0), 7);
  EXPECT_EQ(p.rejected_count(), 1u);
  p.reject(0);
  EXPECT_EQ(p.rejected_count(), 2u);
}

TEST(Placement, EqualityAndGenes) {
  Placement a(std::vector<std::int32_t>{1, 2, Placement::kRejected});
  Placement b(std::vector<std::int32_t>{1, 2, Placement::kRejected});
  EXPECT_EQ(a, b);
  b.assign(2, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.genes().size(), 3u);
}

TEST(Infrastructure, ShorthandsAndDatacenters) {
  const Instance inst = make_instance(2, 3, {16.0, 64.0, 1000.0},
                                      {{1.0, 2.0, 20.0}});
  EXPECT_EQ(inst.g(), 2u);
  EXPECT_EQ(inst.m(), 6u);
  EXPECT_EQ(inst.n(), 1u);
  EXPECT_EQ(inst.h(), 3u);
  EXPECT_EQ(inst.infra.datacenter_of(0), 0u);
  EXPECT_EQ(inst.infra.datacenter_of(5), 1u);
  const auto dc1 = inst.infra.servers_in_datacenter(1);
  EXPECT_EQ(dc1, (std::vector<std::uint32_t>{3, 4, 5}));
}

TEST(Infrastructure, TotalEffectiveCapacity) {
  const Instance inst =
      make_instance(1, 4, {10.0, 20.0, 30.0}, {{1.0, 1.0, 1.0}});
  // Test helper uses factor 1.0.
  EXPECT_DOUBLE_EQ(inst.infra.total_effective_capacity(0), 40.0);
  EXPECT_DOUBLE_EQ(inst.infra.total_effective_capacity(2), 120.0);
}

TEST(Instance, PreviousPlacementStartsEmpty) {
  const Instance inst = make_instance(1, 2, {16.0, 64.0, 1000.0},
                                      {{1.0, 2.0, 20.0}, {2.0, 4.0, 40.0}});
  EXPECT_EQ(inst.previous.vm_count(), 2u);
  EXPECT_EQ(inst.previous.rejected_count(), 2u);
}

TEST(RequestSet, ValidCatchesBadConstraints) {
  RequestSet rs;
  rs.vms = {make_vm({1.0, 1.0, 1.0}), make_vm({1.0, 1.0, 1.0})};
  rs.constraints.push_back({RelationKind::kSameServer, {0, 1}});
  EXPECT_TRUE(rs.valid(3));
  rs.constraints.push_back({RelationKind::kSameServer, {0}});  // too small
  EXPECT_FALSE(rs.valid(3));
  rs.constraints.back() = {RelationKind::kSameServer, {0, 5}};  // bad index
  EXPECT_FALSE(rs.valid(3));
}

TEST(PlacementConstraint, AffinityClassification) {
  const PlacementConstraint same_s{RelationKind::kSameServer, {0, 1}};
  const PlacementConstraint same_d{RelationKind::kSameDatacenter, {0, 1}};
  const PlacementConstraint diff_s{RelationKind::kDifferentServers, {0, 1}};
  const PlacementConstraint diff_d{RelationKind::kDifferentDatacenters,
                                   {0, 1}};
  EXPECT_TRUE(same_s.is_affinity());
  EXPECT_TRUE(same_d.is_affinity());
  EXPECT_TRUE(diff_s.is_anti_affinity());
  EXPECT_TRUE(diff_d.is_anti_affinity());
}

TEST(Attributes, CanonicalNames) {
  EXPECT_EQ(attribute_name(kCpu), "cpu");
  EXPECT_EQ(attribute_name(kRam), "ram");
  EXPECT_EQ(attribute_name(kDisk), "disk");
  EXPECT_EQ(attribute_name(5), "attr5");
}

TEST(Relations, Names) {
  EXPECT_EQ(relation_name(RelationKind::kSameServer), "same-server");
  EXPECT_EQ(relation_name(RelationKind::kSameDatacenter), "same-datacenter");
  EXPECT_EQ(relation_name(RelationKind::kDifferentServers),
            "different-servers");
  EXPECT_EQ(relation_name(RelationKind::kDifferentDatacenters),
            "different-datacenters");
}

}  // namespace
}  // namespace iaas
