// Whole-service availability analysis over placements.
#include "model/availability.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;

TEST(Availability, SingleServerServiceFailsTogether) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  Placement p(2);
  p.assign(0, 0);
  p.assign(1, 0);  // co-located
  const ServiceAvailability a =
      service_availability(inst, p, {0, 1}, 0.1);
  EXPECT_EQ(a.distinct_servers, 1u);
  EXPECT_NEAR(a.all_up_probability, 0.9, 1e-12);   // one fault domain
  EXPECT_NEAR(a.any_up_probability, 0.9, 1e-12);   // same domain
}

TEST(Availability, SpreadingImprovesAnyUp) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  Placement spread(2);
  spread.assign(0, 0);
  spread.assign(1, 2);  // different DCs
  const ServiceAvailability a =
      service_availability(inst, spread, {0, 1}, 0.1);
  EXPECT_EQ(a.distinct_servers, 2u);
  EXPECT_EQ(a.distinct_datacenters, 2u);
  EXPECT_NEAR(a.all_up_probability, 0.81, 1e-12);  // both must survive
  EXPECT_NEAR(a.any_up_probability, 0.99, 1e-12);  // replica semantics
}

TEST(Availability, RejectedMemberKillsAllUp) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  Placement p(2);
  p.assign(0, 0);  // member 1 rejected
  const ServiceAvailability a =
      service_availability(inst, p, {0, 1}, 0.1);
  EXPECT_DOUBLE_EQ(a.all_up_probability, 0.0);
  EXPECT_NEAR(a.any_up_probability, 0.9, 1e-12);
}

TEST(Availability, AllRejectedService) {
  const Instance inst =
      make_instance(1, 1, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}});
  const ServiceAvailability a =
      service_availability(inst, Placement(1), {0}, 0.1);
  EXPECT_DOUBLE_EQ(a.all_up_probability, 0.0);
  EXPECT_DOUBLE_EQ(a.any_up_probability, 0.0);
  EXPECT_EQ(a.distinct_servers, 0u);
}

TEST(Availability, ZeroFailureProbability) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  Placement p(2);
  p.assign(0, 0);
  p.assign(1, 1);
  const ServiceAvailability a =
      service_availability(inst, p, {0, 1}, 0.0);
  EXPECT_DOUBLE_EQ(a.all_up_probability, 1.0);
  EXPECT_DOUBLE_EQ(a.any_up_probability, 1.0);
}

TEST(Availability, PathRedundancyReflectsFabric) {
  // Two servers on the same leaf: redundancy 1; across leaves: #spines.
  FabricConfig fc;
  fc.datacenters = 1;
  fc.leaves_per_dc = 2;
  fc.servers_per_leaf = 2;
  fc.spines_per_dc = 3;
  std::vector<Server> servers;
  for (int i = 0; i < 4; ++i) {
    servers.push_back(test::make_server(0, {10.0, 10.0, 10.0}));
  }
  RequestSet requests;
  requests.vms = {test::make_vm({1.0, 1.0, 1.0}),
                  test::make_vm({1.0, 1.0, 1.0})};
  Instance inst(Infrastructure(fc, std::move(servers)),
                std::move(requests));

  Placement same_leaf(2);
  same_leaf.assign(0, 0);
  same_leaf.assign(1, 1);
  EXPECT_EQ(service_availability(inst, same_leaf, {0, 1}, 0.1)
                .min_path_redundancy,
            1u);

  Placement cross_leaf(2);
  cross_leaf.assign(0, 0);
  cross_leaf.assign(1, 2);
  EXPECT_EQ(service_availability(inst, cross_leaf, {0, 1}, 0.1)
                .min_path_redundancy,
            3u);
}

TEST(Availability, PlacementReportPerGroup) {
  const Instance inst = make_instance(
      2, 2, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kSameServer, {0, 1}},
       {RelationKind::kDifferentDatacenters, {2, 3}}});
  Placement p(4);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  p.assign(3, 2);
  const auto report = placement_availability(inst, p, 0.05);
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].distinct_servers, 1u);
  EXPECT_EQ(report[1].distinct_datacenters, 2u);
  EXPECT_GT(report[1].any_up_probability, report[0].any_up_probability);
}

TEST(Availability, AntiAffinityBeatsAffinityForReplicas) {
  // Quantifies the consumer's interest in anti-affinity: replicas split
  // across datacenters survive more often.
  const Instance inst = make_instance(
      2, 4, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  Placement together(3);
  together.assign(0, 0);
  together.assign(1, 0);
  together.assign(2, 0);
  Placement apart(3);
  apart.assign(0, 0);
  apart.assign(1, 3);
  apart.assign(2, 5);
  const double p_fail = 0.2;
  const double together_up =
      service_availability(inst, together, {0, 1, 2}, p_fail)
          .any_up_probability;
  const double apart_up =
      service_availability(inst, apart, {0, 1, 2}, p_fail)
          .any_up_probability;
  EXPECT_NEAR(together_up, 0.8, 1e-12);
  EXPECT_NEAR(apart_up, 1.0 - std::pow(p_fail, 3), 1e-12);
  EXPECT_GT(apart_up, together_up);
}

}  // namespace
}  // namespace iaas
