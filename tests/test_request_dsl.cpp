// The declarative request language (vm / group directives).
#include "io/request_dsl.h"

#include <gtest/gtest.h>

#include "model/attributes.h"

namespace iaas {
namespace {

TEST(RequestDsl, ParsesVmsAndGroups) {
  const ParsedRequests parsed = parse_request_dsl(R"(
# three-tier web service
vm web1 cpu=2 ram=4 disk=40 qos=0.9
vm web2 cpu=2 ram=4 disk=40 qos=0.9
vm db   cpu=8 ram=32 disk=320 qos=0.93 downtime_cost=50 migration_cost=8
group different-servers web1 web2
group same-datacenter web1 db
)");
  ASSERT_EQ(parsed.requests.vms.size(), 3u);
  EXPECT_EQ(parsed.vm_names, (std::vector<std::string>{"web1", "web2", "db"}));
  EXPECT_DOUBLE_EQ(parsed.requests.vms[0].demand[kCpu], 2.0);
  EXPECT_DOUBLE_EQ(parsed.requests.vms[2].demand[kRam], 32.0);
  EXPECT_DOUBLE_EQ(parsed.requests.vms[2].downtime_cost, 50.0);
  EXPECT_DOUBLE_EQ(parsed.requests.vms[2].migration_cost, 8.0);
  ASSERT_EQ(parsed.requests.constraints.size(), 2u);
  EXPECT_EQ(parsed.requests.constraints[0].kind,
            RelationKind::kDifferentServers);
  EXPECT_EQ(parsed.requests.constraints[0].vms,
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(parsed.requests.constraints[1].kind,
            RelationKind::kSameDatacenter);
  EXPECT_EQ(parsed.requests.constraints[1].vms,
            (std::vector<std::uint32_t>{0, 2}));
}

TEST(RequestDsl, DefaultsApplied) {
  const ParsedRequests parsed =
      parse_request_dsl("vm a cpu=1 ram=2 disk=20\n");
  const VmRequest& vm = parsed.requests.vms[0];
  EXPECT_DOUBLE_EQ(vm.qos_guarantee, 0.9);  // VmRequest default
  EXPECT_DOUBLE_EQ(vm.downtime_cost, 0.0);
  EXPECT_DOUBLE_EQ(vm.migration_cost, 0.0);
}

TEST(RequestDsl, CommentsAndBlankLinesIgnored) {
  const ParsedRequests parsed = parse_request_dsl(
      "# header\n\nvm a cpu=1 ram=1 disk=1  # inline comment\n\n");
  EXPECT_EQ(parsed.requests.vms.size(), 1u);
}

TEST(RequestDsl, ValidRequestSet) {
  const ParsedRequests parsed = parse_request_dsl(
      "vm a cpu=1 ram=1 disk=1\nvm b cpu=1 ram=1 disk=1\n"
      "group same-server a b\n");
  EXPECT_TRUE(parsed.requests.valid(kDefaultAttributeCount));
}

TEST(RequestDsl, Errors) {
  // Missing attribute.
  EXPECT_THROW(parse_request_dsl("vm a cpu=1 ram=1\n"), std::runtime_error);
  // Duplicate name.
  EXPECT_THROW(parse_request_dsl(
                   "vm a cpu=1 ram=1 disk=1\nvm a cpu=1 ram=1 disk=1\n"),
               std::runtime_error);
  // Unknown directive / attribute / group kind.
  EXPECT_THROW(parse_request_dsl("host a cpu=1\n"), std::runtime_error);
  EXPECT_THROW(parse_request_dsl("vm a cpu=1 ram=1 disk=1 gpu=1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_request_dsl("vm a cpu=1 ram=1 disk=1\n"
                                 "vm b cpu=1 ram=1 disk=1\n"
                                 "group near a b\n"),
               std::runtime_error);
  // Group references undeclared VM.
  EXPECT_THROW(parse_request_dsl("vm a cpu=1 ram=1 disk=1\n"
                                 "group same-server a ghost\n"),
               std::runtime_error);
  // Group too small.
  EXPECT_THROW(parse_request_dsl("vm a cpu=1 ram=1 disk=1\n"
                                 "group same-server a\n"),
               std::runtime_error);
  // Malformed number.
  EXPECT_THROW(parse_request_dsl("vm a cpu=two ram=1 disk=1\n"),
               std::runtime_error);
  // Out-of-range qos.
  EXPECT_THROW(parse_request_dsl("vm a cpu=1 ram=1 disk=1 qos=1.5\n"),
               std::runtime_error);
}

TEST(RequestDsl, ErrorNamesLine) {
  try {
    parse_request_dsl("vm a cpu=1 ram=1 disk=1\nbogus\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(RequestDsl, RenderParseRoundTrip) {
  const ParsedRequests original = parse_request_dsl(
      "vm a cpu=1.5 ram=3 disk=30 qos=0.85 downtime_cost=12 migration_cost=3\n"
      "vm b cpu=2 ram=4 disk=40\n"
      "vm c cpu=4 ram=8 disk=80\n"
      "group different-datacenters a b\n"
      "group same-server b c\n");
  const std::string rendered =
      render_request_dsl(original.requests, original.vm_names);
  const ParsedRequests reparsed = parse_request_dsl(rendered);

  ASSERT_EQ(reparsed.requests.vms.size(), original.requests.vms.size());
  for (std::size_t k = 0; k < original.requests.vms.size(); ++k) {
    EXPECT_EQ(reparsed.requests.vms[k].demand,
              original.requests.vms[k].demand);
    EXPECT_DOUBLE_EQ(reparsed.requests.vms[k].qos_guarantee,
                     original.requests.vms[k].qos_guarantee);
  }
  ASSERT_EQ(reparsed.requests.constraints.size(),
            original.requests.constraints.size());
  for (std::size_t c = 0; c < original.requests.constraints.size(); ++c) {
    EXPECT_EQ(reparsed.requests.constraints[c].kind,
              original.requests.constraints[c].kind);
    EXPECT_EQ(reparsed.requests.constraints[c].vms,
              original.requests.constraints[c].vms);
  }
  EXPECT_EQ(reparsed.vm_names, original.vm_names);
}

TEST(RequestDsl, RenderWithoutNamesUsesIndices) {
  RequestSet rs;
  VmRequest vm;
  vm.demand = {1.0, 2.0, 3.0};
  rs.vms.push_back(vm);
  const std::string text = render_request_dsl(rs);
  EXPECT_NE(text.find("vm vm0 "), std::string::npos);
}

}  // namespace
}  // namespace iaas
