// The six allocators of the paper's comparison + ideal-point selection +
// registry.
#include <gtest/gtest.h>

#include "algo/cp_allocator.h"
#include "algo/cp_repair.h"
#include "algo/ideal_point.h"
#include "algo/nsga_allocators.h"
#include "algo/registry.h"
#include "algo/round_robin.h"
#include "model/constraint_checker.h"
#include "tests/test_util.h"

namespace iaas {
namespace {

using test::make_instance;
using test::make_random_instance;

EaAllocatorOptions quick_ea_options() {
  EaAllocatorOptions options;
  options.nsga.population_size = 20;
  options.nsga.max_evaluations = 400;
  options.nsga.reference_divisions = 4;
  return options;
}

SuiteOptions quick_suite() {
  SuiteOptions options;
  options.ea = quick_ea_options();
  options.cp.time_limit_seconds = 2.0;
  options.cp.max_backtracks = 20000;
  return options;
}

TEST(RoundRobin, SpreadsAcrossServers) {
  const Instance inst = make_instance(
      1, 4, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  RoundRobinAllocator rr;
  const AllocationResult result = rr.allocate(inst, 1);
  EXPECT_EQ(result.rejected, 0u);
  // Rotating cursor: four VMs on four distinct servers.
  std::vector<std::int32_t> servers;
  for (std::size_t k = 0; k < 4; ++k) {
    servers.push_back(result.placement.server_of(k));
  }
  std::sort(servers.begin(), servers.end());
  EXPECT_EQ(servers, (std::vector<std::int32_t>{0, 1, 2, 3}));
}

TEST(RoundRobin, RejectsWhatCannotFit) {
  const Instance inst = make_instance(
      1, 1, {10.0, 10.0, 10.0}, {{8.0, 8.0, 8.0}, {8.0, 8.0, 8.0}});
  RoundRobinAllocator rr;
  const AllocationResult result = rr.allocate(inst, 1);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_TRUE(result.raw_violations.feasible());  // RR never violates
}

TEST(RoundRobin, HonoursAffinityGroups) {
  const Instance inst = make_instance(
      1, 4, {10.0, 10.0, 10.0},
      {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}},
      {{RelationKind::kSameServer, {0, 2}}});
  RoundRobinAllocator rr;
  const AllocationResult result = rr.allocate(inst, 1);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.placement.server_of(0), result.placement.server_of(2));
}

TEST(CpAllocatorSmoke, OptimalOnEasyInstance) {
  const Instance inst = make_random_instance(1, 8, 12);
  CpSolverOptions options;
  options.time_limit_seconds = 5.0;
  CpAllocator cp(options);
  const AllocationResult result = cp.allocate(inst, 1);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_TRUE(result.raw_violations.feasible());
  EXPECT_TRUE(cp.last_stats().found_complete);
}

TEST(IdealPoint, PicksClosestToOrigin) {
  std::vector<Individual> front(3);
  front[0].objectives = {1.0, 0.0, 0.0};
  front[1].objectives = {0.1, 0.1, 0.1};  // nearly ideal
  front[2].objectives = {0.0, 1.0, 1.0};
  EXPECT_EQ(select_ideal_point(front), 1u);
}

TEST(IdealPoint, PrefersFeasibleMembers) {
  std::vector<Individual> front(2);
  front[0].objectives = {0.0, 0.0, 0.0};
  front[0].violations = 3;
  front[1].objectives = {5.0, 5.0, 5.0};
  front[1].violations = 0;
  EXPECT_EQ(select_ideal_point(front), 1u);
}

TEST(IdealPoint, SingleMemberFront) {
  std::vector<Individual> front(1);
  front[0].objectives = {3.0, 2.0, 1.0};
  EXPECT_EQ(select_ideal_point(front), 0u);
}

TEST(CpRepairOperator, RestoresFeasibility) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{8.0, 2.0, 2.0}, {8.0, 2.0, 2.0}});
  CpRepair repair(inst);
  Rng rng(1);
  std::vector<std::int32_t> genes = {0, 0};
  EXPECT_EQ(repair.repair(genes, rng), 0u);
  EXPECT_TRUE(ConstraintChecker(inst).check(Placement(genes)).feasible());
}

TEST(CpRepairOperator, FeasibleInputIsNoop) {
  const Instance inst = make_instance(
      1, 2, {10.0, 10.0, 10.0}, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  CpRepair repair(inst);
  Rng rng(2);
  std::vector<std::int32_t> genes = {0, 1};
  const auto original = genes;
  EXPECT_EQ(repair.repair(genes, rng), 0u);
  EXPECT_EQ(genes, original);
}

TEST(CpRepairOperator, KeepsGenesFullyAssignedOnFailure) {
  // Impossible demand: repair cannot succeed but must not leave holes.
  const Instance inst = make_instance(
      1, 1, {10.0, 10.0, 10.0}, {{8.0, 8.0, 8.0}, {8.0, 8.0, 8.0}});
  CpRepair repair(inst);
  Rng rng(3);
  std::vector<std::int32_t> genes = {0, 0};
  EXPECT_GT(repair.repair(genes, rng), 0u);
  for (std::int32_t g : genes) {
    EXPECT_GE(g, 0);
  }
}

TEST(Registry, AllSixAlgorithmsConstructible) {
  const SuiteOptions suite = quick_suite();
  EXPECT_EQ(all_algorithms().size(), 6u);
  for (AlgorithmId id : all_algorithms()) {
    const auto allocator = make_allocator(id, suite);
    ASSERT_NE(allocator, nullptr);
    EXPECT_EQ(allocator->name(), algorithm_name(id));
  }
}

class AllocatorContract : public ::testing::TestWithParam<AlgorithmId> {};

// The core contract of every allocator: sanitized output feasible,
// metrics self-consistent.
TEST_P(AllocatorContract, SanitizedFeasibleAndMetricsConsistent) {
  const Instance inst = make_random_instance(5, 8, 24);
  const auto allocator = make_allocator(GetParam(), quick_suite());
  const AllocationResult result = allocator->allocate(inst, 7);

  EXPECT_EQ(result.vm_count, inst.n());
  EXPECT_EQ(result.placement.vm_count(), inst.n());
  EXPECT_TRUE(ConstraintChecker(inst).check(result.placement).feasible());
  EXPECT_EQ(result.rejected, result.placement.rejected_count());
  EXPECT_GE(result.wall_seconds, 0.0);
  EXPECT_GE(result.rejection_rate(), 0.0);
  EXPECT_LE(result.rejection_rate(), 1.0);
  EXPECT_EQ(result.algorithm, algorithm_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllSix, AllocatorContract,
    ::testing::Values(AlgorithmId::kRoundRobin,
                      AlgorithmId::kConstraintProgramming,
                      AlgorithmId::kNsga2, AlgorithmId::kNsga3,
                      AlgorithmId::kNsga3Cp, AlgorithmId::kNsga3Tabu));

TEST(HybridAllocator, TabuVariantProducesZeroRawViolations) {
  ScenarioConfig cfg = ScenarioConfig::paper_scale(16);
  cfg.vms = 32;
  const Instance inst = ScenarioGenerator(cfg).generate(9);
  Nsga3TabuAllocator tabu(quick_ea_options());
  const AllocationResult result = tabu.allocate(inst, 11);
  EXPECT_EQ(result.raw_violations.total(), 0u);  // the paper's key claim
  EXPECT_EQ(result.rejected, 0u);
}

TEST(HybridAllocator, TopologyMigrationWeightChangesNothingWhenFresh) {
  // No previous placement: the migration term is zero either way.
  const Instance inst = make_random_instance(19, 8, 16);
  EaAllocatorOptions plain = quick_ea_options();
  EaAllocatorOptions weighted = quick_ea_options();
  weighted.objectives.topology_migration_weight = true;
  Nsga3TabuAllocator a(plain);
  Nsga3TabuAllocator b(weighted);
  const AllocationResult ra = a.allocate(inst, 23);
  const AllocationResult rb = b.allocate(inst, 23);
  EXPECT_DOUBLE_EQ(ra.objectives.migration_cost, 0.0);
  EXPECT_DOUBLE_EQ(rb.objectives.migration_cost, 0.0);
}

TEST(HybridAllocator, MigrationTermSteersTowardStability) {
  // Strongly preplaced instance: the hybrid should keep most VMs where
  // they are rather than pay Eq. 26 for reshuffling.
  ScenarioConfig cfg = ScenarioConfig::paper_scale(16);
  cfg.preplaced_fraction = 1.0;
  cfg.migration_cost_min = 50.0;  // make moving very expensive
  cfg.migration_cost_max = 100.0;
  const Instance inst = ScenarioGenerator(cfg).generate(29);
  Nsga3TabuAllocator allocator(quick_ea_options());
  const AllocationResult r = allocator.allocate(inst, 31);
  std::size_t stayed = 0;
  std::size_t preplaced = 0;
  for (std::size_t k = 0; k < inst.n(); ++k) {
    if (!inst.previous.is_assigned(k)) {
      continue;
    }
    ++preplaced;
    if (r.placement.is_assigned(k) &&
        r.placement.server_of(k) == inst.previous.server_of(k)) {
      ++stayed;
    }
  }
  ASSERT_GT(preplaced, 0u);
  EXPECT_GT(static_cast<double>(stayed) / static_cast<double>(preplaced),
            0.5);
}

TEST(HybridAllocator, PostTabuSearchDoesNotWorsenCost) {
  const Instance inst = make_random_instance(13, 8, 24);
  EaAllocatorOptions base = quick_ea_options();
  Nsga3TabuAllocator plain(base);
  EaAllocatorOptions polished_options = quick_ea_options();
  polished_options.post_tabu_search = true;
  polished_options.post_search.max_iterations = 100;
  Nsga3TabuAllocator polished(polished_options);

  const double plain_cost =
      plain.allocate(inst, 17).objectives.aggregate();
  const double polished_cost =
      polished.allocate(inst, 17).objectives.aggregate();
  EXPECT_LE(polished_cost, plain_cost + 1e-9);
}

}  // namespace
}  // namespace iaas
