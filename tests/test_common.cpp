// Matrix, statistics, table/CSV writers, stopwatch/deadline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/matrix.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace iaas {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix<double> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FillConstructorAndIndexing) {
  Matrix<int> m(3, 4, 7);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(m(r, c), 7);
    }
  }
  m(1, 2) = -3;
  EXPECT_EQ(m(1, 2), -3);
}

TEST(Matrix, RowSpanIsContiguousView) {
  Matrix<int> m(2, 3, 0);
  auto row = m.row(1);
  row[0] = 5;
  row[2] = 9;
  EXPECT_EQ(m(1, 0), 5);
  EXPECT_EQ(m(1, 2), 9);
  EXPECT_EQ(m.row(0)[0], 0);
}

TEST(Matrix, FillResetsAll) {
  Matrix<double> m(2, 2, 1.0);
  m.fill(0.5);
  for (double v : m.flat()) {
    EXPECT_DOUBLE_EQ(v, 0.5);
  }
}

TEST(Matrix, Equality) {
  Matrix<int> a(2, 2, 1);
  Matrix<int> b(2, 2, 1);
  EXPECT_EQ(a, b);
  b(0, 0) = 2;
  EXPECT_NE(a, b);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, MeanAndStddevHelpers) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t({"algo", "time"});
  t.add_row({"RR", "1.5"});
  t.add_row({"NSGA-III+Tabu", "5.0"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| algo"), std::string::npos);
  EXPECT_NE(s.find("NSGA-III+Tabu"), std::string::npos);
  // Every data row has the same width as the rule lines.
  std::istringstream in(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) {
      width = line.size();
    }
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(CsvWriter, WritesHeaderAndEscapes) {
  const std::string path = "/tmp/iaas_test_csv.csv";
  {
    CsvWriter csv(path, {"name", "value"});
    csv.add_row({"plain", "1"});
    csv.add_row({"with,comma", "has \"quote\""});
    EXPECT_TRUE(csv.ok());
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"has \"\"quote\"\"\"");
  std::filesystem::remove(path);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  const double t0 = sw.elapsed_seconds();
  EXPECT_GE(t0, 0.0);
  // Burn a little CPU to let time advance.
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) {
    x = x + 1.0;
  }
  EXPECT_GE(sw.elapsed_seconds(), t0);
}

TEST(Deadline, UnlimitedNeverExpires) {
  const Deadline d;
  EXPECT_FALSE(d.limited());
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, ExpiresInPastImmediately) {
  const Deadline d = Deadline::after_seconds(-1.0);
  EXPECT_TRUE(d.limited());
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, FutureDeadlineNotExpired) {
  const Deadline d = Deadline::after_seconds(60.0);
  EXPECT_FALSE(d.expired());
}

}  // namespace
}  // namespace iaas
