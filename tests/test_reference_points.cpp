// Das-Dennis reference points and NSGA-III normalisation machinery.
#include "ea/reference_points.h"

#include <gtest/gtest.h>

#include <cmath>

namespace iaas {
namespace {

std::size_t choose2(std::size_t n) { return n * (n - 1) / 2; }

class DasDennisCount : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DasDennisCount, CountIsBinomial) {
  const std::size_t d = GetParam();
  const auto points = das_dennis_points(d);
  // C(d + M - 1, M - 1) with M = 3 -> C(d+2, 2).
  EXPECT_EQ(points.size(), choose2(d + 2));
}

INSTANTIATE_TEST_SUITE_P(Divisions, DasDennisCount,
                         ::testing::Values(1u, 2u, 4u, 8u, 12u, 16u));

TEST(DasDennis, PointsOnSimplex) {
  for (const ObjArray& p : das_dennis_points(12)) {
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(DasDennis, ContainsCornersAndIsUnique) {
  const auto points = das_dennis_points(4);
  auto contains = [&](const ObjArray& q) {
    for (const ObjArray& p : points) {
      if (std::abs(p[0] - q[0]) < 1e-12 && std::abs(p[1] - q[1]) < 1e-12 &&
          std::abs(p[2] - q[2]) < 1e-12) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(contains({1.0, 0.0, 0.0}));
  EXPECT_TRUE(contains({0.0, 1.0, 0.0}));
  EXPECT_TRUE(contains({0.0, 0.0, 1.0}));
  EXPECT_TRUE(contains({0.5, 0.25, 0.25}));
  // Uniqueness.
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const bool same = std::abs(points[i][0] - points[j][0]) < 1e-12 &&
                        std::abs(points[i][1] - points[j][1]) < 1e-12 &&
                        std::abs(points[i][2] - points[j][2]) < 1e-12;
      EXPECT_FALSE(same);
    }
  }
}

TEST(PerpendicularDistance, PointOnRayIsZero) {
  const ObjArray dir = {1.0, 1.0, 1.0};
  EXPECT_NEAR(perpendicular_distance({2.0, 2.0, 2.0}, dir), 0.0, 1e-12);
}

TEST(PerpendicularDistance, KnownValue) {
  // Distance from (1,0,0) to the ray along (0,1,0) is 1.
  EXPECT_NEAR(perpendicular_distance({1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}), 1.0,
              1e-12);
}

TEST(PerpendicularDistance, ScaleInvariantInDirection) {
  const ObjArray p = {1.0, 2.0, 3.0};
  const double d1 = perpendicular_distance(p, {1.0, 1.0, 0.0});
  const double d2 = perpendicular_distance(p, {10.0, 10.0, 0.0});
  EXPECT_NEAR(d1, d2, 1e-12);
}

Individual ind(double a, double b, double c) {
  Individual i;
  i.objectives = {a, b, c};
  return i;
}

TEST(Normalizer, IdealIsComponentwiseMin) {
  Population pop = {ind(1, 5, 9), ind(2, 4, 8), ind(3, 3, 7)};
  Normalizer norm;
  norm.fit(pop, {0, 1, 2});
  EXPECT_DOUBLE_EQ(norm.ideal()[0], 1.0);
  EXPECT_DOUBLE_EQ(norm.ideal()[1], 3.0);
  EXPECT_DOUBLE_EQ(norm.ideal()[2], 7.0);
}

TEST(Normalizer, AxisAlignedFrontNormalisesToUnit) {
  // Extremes exactly on translated axes: intercepts = extreme values.
  Population pop = {ind(10, 0, 0), ind(0, 20, 0), ind(0, 0, 40)};
  Normalizer norm;
  norm.fit(pop, {0, 1, 2});
  EXPECT_NEAR(norm.intercepts()[0], 10.0, 1e-9);
  EXPECT_NEAR(norm.intercepts()[1], 20.0, 1e-9);
  EXPECT_NEAR(norm.intercepts()[2], 40.0, 1e-9);
  const ObjArray n = norm.normalize({10.0, 0.0, 0.0});
  EXPECT_NEAR(n[0], 1.0, 1e-9);
  EXPECT_NEAR(n[1], 0.0, 1e-9);
  EXPECT_NEAR(n[2], 0.0, 1e-9);
}

TEST(Normalizer, DegenerateFrontFallsBackToMaxSpread) {
  // All members identical: singular extremes; fallback must not produce
  // zero/NaN intercepts.
  Population pop = {ind(5, 5, 5), ind(5, 5, 5)};
  Normalizer norm;
  norm.fit(pop, {0, 1});
  for (double i : norm.intercepts()) {
    EXPECT_TRUE(std::isfinite(i));
    EXPECT_GT(i, 0.0);
  }
  const ObjArray n = norm.normalize({5.0, 5.0, 5.0});
  for (double v : n) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Normalizer, MembersSubsetOnly) {
  // Statistics must come from the indexed members, not the whole vector.
  Population pop = {ind(100, 100, 100), ind(1, 2, 3), ind(4, 5, 6)};
  Normalizer norm;
  norm.fit(pop, {1, 2});
  EXPECT_DOUBLE_EQ(norm.ideal()[0], 1.0);
  EXPECT_DOUBLE_EQ(norm.ideal()[1], 2.0);
  EXPECT_DOUBLE_EQ(norm.ideal()[2], 3.0);
}

}  // namespace
}  // namespace iaas
