// Consumer-oriented availability reporting: define a service in the
// request DSL, let two allocators place it, and quantify what the
// affinity/anti-affinity constraints actually buy — whole-service
// availability under server failures, the very quantity the paper's
// related-work section says prior placement strategies neglect.
//
//   $ ./availability_report [failure_probability]   (default 0.05)
#include <cstdio>
#include <cstdlib>

#include "algo/nsga_allocators.h"
#include "algo/round_robin.h"
#include "io/request_dsl.h"
#include "io/serialize.h"
#include "model/availability.h"
#include "workload/generator.h"

using namespace iaas;

namespace {

constexpr const char* kServiceDsl = R"(
# An e-commerce deployment with explicit availability interests.
vm lb-a     cpu=2  ram=4  disk=40  qos=0.92 downtime_cost=30 migration_cost=5
vm lb-b     cpu=2  ram=4  disk=40  qos=0.92 downtime_cost=30 migration_cost=5
vm app-1    cpu=4  ram=8  disk=80  qos=0.90 downtime_cost=20 migration_cost=4
vm app-2    cpu=4  ram=8  disk=80  qos=0.90 downtime_cost=20 migration_cost=4
vm app-3    cpu=4  ram=8  disk=80  qos=0.90 downtime_cost=20 migration_cost=4
vm cache    cpu=2  ram=16 disk=20  qos=0.85 downtime_cost=10 migration_cost=2
vm db-main  cpu=8  ram=32 disk=320 qos=0.94 downtime_cost=60 migration_cost=9
vm db-rep   cpu=8  ram=32 disk=320 qos=0.94 downtime_cost=60 migration_cost=9

group different-datacenters lb-a lb-b
group different-servers app-1 app-2 app-3
group same-server app-1 cache
group different-datacenters db-main db-rep
)";

}  // namespace

int main(int argc, char** argv) {
  const double p_fail = argc > 1 ? std::strtod(argv[1], nullptr) : 0.05;

  const ParsedRequests parsed = parse_request_dsl(kServiceDsl);
  std::printf("Parsed %zu VMs, %zu relationship groups from the DSL\n",
              parsed.requests.vms.size(),
              parsed.requests.constraints.size());

  ScenarioConfig scenario;
  scenario.datacenters = 2;
  scenario.total_servers = 32;
  const ScenarioGenerator generator(scenario);
  Instance instance(generator.generate_infrastructure(3), parsed.requests);

  RoundRobinAllocator rr;
  Nsga3TabuAllocator hybrid;
  for (Allocator* allocator : {static_cast<Allocator*>(&rr),
                               static_cast<Allocator*>(&hybrid)}) {
    const AllocationResult result = allocator->allocate(instance, 9);
    std::printf("\n--- %s (placed %zu/%zu) ---\n", result.algorithm.c_str(),
                result.vm_count - result.rejected, result.vm_count);
    const auto report =
        placement_availability(instance, result.placement, p_fail);
    for (std::size_t c = 0; c < report.size(); ++c) {
      const PlacementConstraint& pc = instance.requests.constraints[c];
      std::printf("  group[%zu] %-22s", c,
                  relation_kind_to_string(pc.kind).c_str());
      std::printf(" members:");
      for (std::uint32_t k : pc.vms) {
        std::printf(" %s", parsed.vm_names[k].c_str());
      }
      std::printf("\n    hosts %zu, DCs %zu, P(all up) %.4f,"
                  " P(any up) %.6f, min path redundancy %u\n",
                  report[c].distinct_servers,
                  report[c].distinct_datacenters,
                  report[c].all_up_probability,
                  report[c].any_up_probability,
                  report[c].min_path_redundancy);
    }
  }
  std::printf("\n(per-server failure probability %.3f; the anti-affinity"
              " groups' P(any up)\nis what consumers buy with separation"
              " constraints)\n",
              p_fail);
  return 0;
}
