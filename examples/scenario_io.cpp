// Working with scenario files: persist a generated scenario as JSON,
// reload it, allocate, and export results with normalized metrics —
// the workflow for sharing reproducible experiments.
//
//   $ ./scenario_io [path]        (default /tmp/iaas_scenario.json)
#include <cstdio>
#include <string>

#include "algo/metrics.h"
#include "algo/registry.h"
#include "io/serialize.h"
#include "workload/generator.h"

using namespace iaas;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/iaas_scenario.json";

  // 1. Generate and persist a scenario.
  ScenarioConfig cfg = ScenarioConfig::paper_scale(24);
  cfg.preplaced_fraction = 0.25;  // some VMs already running
  const Instance generated = ScenarioGenerator(cfg).generate(/*seed=*/404);
  save_instance(generated, path);
  std::printf("Scenario saved to %s (%zu servers, %zu VMs, %zu groups)\n",
              path.c_str(), generated.m(), generated.n(),
              generated.requests.constraints.size());

  // 2. Reload — bit-identical model (see test_io.cpp round-trip tests).
  const Instance instance = load_instance(path);

  // 3. Allocate with two algorithms and compare normalized metrics (the
  //    paper's future-work cost-per-request comparison).
  SuiteOptions suite;
  suite.ea.nsga.threads = 0;
  for (AlgorithmId id :
       {AlgorithmId::kRoundRobin, AlgorithmId::kNsga3Tabu}) {
    const AllocationResult result =
        make_allocator(id, suite)->allocate(instance, /*seed=*/7);
    const NormalizedMetrics metrics = compute_metrics(instance, result);
    const UtilizationSummary util =
        compute_utilization(instance, result.placement);

    std::printf("\n--- %s ---\n", result.algorithm.c_str());
    std::printf("acceptance %.1f%%, cost/request %.3f,"
                " cost/demanded-unit %.4f\n",
                100.0 * metrics.acceptance_rate,
                metrics.cost_per_accepted_request,
                metrics.cost_per_demanded_unit);
    std::printf("revenue %.2f, net profit %.2f\n", metrics.revenue,
                metrics.net_profit);
    std::printf("%zu servers in use, mean worst-attribute load %.2f"
                " (peak %.2f)\n",
                util.used_servers, util.mean_worst_load,
                util.peak_worst_load);

    const std::string result_path =
        path + "." + result.algorithm + ".result.json";
    std::FILE* out = std::fopen(result_path.c_str(), "w");
    if (out != nullptr) {
      const std::string dumped = result_to_json(result).dump(2);
      std::fwrite(dumped.data(), 1, dumped.size(), out);
      std::fclose(out);
      std::printf("result written to %s\n", result_path.c_str());
    }
  }
  return 0;
}
