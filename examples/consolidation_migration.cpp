// Running the cyclic time-window scheduler (paper §III): requests arrive
// and depart over windows; each window the allocator re-solves the whole
// platform and the diff becomes a reconfiguration plan whose migrations
// are priced by Eq. 26.
//
// The provider-oriented story: the hybrid consolidates onto fewer servers
// (lower opex) while keeping migrations modest, something the one-shot
// Round Robin cannot do.
//
//   $ ./consolidation_migration
#include <cstdio>
#include <memory>

#include "algo/registry.h"
#include "sim/simulator.h"

using namespace iaas;

namespace {

void run(AlgorithmId id, const SimConfig& config) {
  SuiteOptions suite;
  suite.ea.nsga.threads = 0;
  suite.ea.nsga.max_evaluations = 4000;  // interactive-speed windows
  CloudSimulator sim(config, make_allocator(id, suite));
  const auto metrics = sim.run(/*seed=*/2026);

  std::printf("--- %s over %zu windows ---\n", algorithm_name(id).c_str(),
              config.windows);
  std::printf("%-7s %8s %8s %8s %8s %6s %11s %10s\n", "window", "arrived",
              "departed", "running", "rejected", "boots", "migrations",
              "cost");
  double total_cost = 0.0;
  std::size_t total_migrations = 0;
  for (const WindowMetrics& w : metrics) {
    std::printf("%-7zu %8zu %8zu %8zu %8zu %6zu %11zu %10.2f\n", w.window,
                w.arrived, w.departed, w.running, w.rejected, w.boots,
                w.migrations, w.objectives.aggregate());
    total_cost += w.objectives.aggregate();
    total_migrations += w.migrations;
  }
  std::printf("total: cost %.2f, migrations %zu\n\n", total_cost,
              total_migrations);
}

}  // namespace

int main() {
  SimConfig config;
  config.windows = 8;
  config.arrivals_per_window_mean = 18.0;
  config.departure_probability = 0.12;
  config.scenario = ScenarioConfig::paper_scale(32);

  std::printf("Cyclic time-window simulation: 32 servers, Poisson(%.0f)"
              " arrivals/window, %.0f%% departures/window\n\n",
              config.arrivals_per_window_mean,
              config.departure_probability * 100.0);

  run(AlgorithmId::kRoundRobin, config);
  run(AlgorithmId::kNsga3Tabu, config);

  std::printf(
      "Reading: the hybrid's per-window cost stays below Round Robin's —\n"
      "it consolidates (fewer servers paying opex) while its warm-started\n"
      "search plus the Eq. 26 migration term hold running VMs in place;\n"
      "stateless Round Robin reshuffles the platform every window.\n");
  return 0;
}
