// Quickstart: build a small cloud, describe a user request with
// affinity/anti-affinity relationships, run the paper's NSGA-III+Tabu
// allocator, and inspect the result.
//
//   $ ./quickstart
#include <cstdio>

#include "algo/nsga_allocators.h"
#include "model/constraint_checker.h"
#include "workload/generator.h"

using namespace iaas;

int main() {
  // 1. Provider side: 2 datacenters of 16 servers each, generated with
  //    typical fleet parameters (see ScenarioConfig for every knob).
  ScenarioConfig scenario;
  scenario.datacenters = 2;
  scenario.total_servers = 32;
  scenario.vms = 0;  // we author the requests ourselves below
  const ScenarioGenerator generator(scenario);
  Infrastructure infra = generator.generate_infrastructure(/*seed=*/1);
  std::printf("Infrastructure: %s\n", infra.fabric().summary().c_str());

  // 2. Consumer side: six VMs with relationships (paper Eqs. 9-12).
  RequestSet requests = generator.generate_requests(infra, 6, /*seed=*/2);
  requests.constraints.clear();
  // VMs 0,1 must share a server (chatty app + sidecar)...
  requests.constraints.push_back({RelationKind::kSameServer, {0, 1}});
  // ...VMs 2,3 are replicas that must sit in different datacenters...
  requests.constraints.push_back({RelationKind::kDifferentDatacenters, {2, 3}});
  // ...and VMs 4,5 must avoid sharing a host.
  requests.constraints.push_back({RelationKind::kDifferentServers, {4, 5}});

  Instance instance(std::move(infra), std::move(requests));

  // 3. Allocate with the paper's proposal: NSGA-III + tabu repair,
  //    Table III parameters by default.
  Nsga3TabuAllocator allocator;
  const AllocationResult result = allocator.allocate(instance, /*seed=*/42);

  // 4. Inspect.
  std::printf("\n%s placed %zu/%zu VMs in %.3fs (%zu evaluations)\n",
              result.algorithm.c_str(), result.vm_count - result.rejected,
              result.vm_count, result.wall_seconds, result.evaluations);
  for (std::size_t k = 0; k < result.vm_count; ++k) {
    if (result.placement.is_assigned(k)) {
      const auto j = static_cast<std::size_t>(result.placement.server_of(k));
      std::printf("  vm%zu -> server %zu (datacenter %u)\n", k, j,
                  instance.infra.datacenter_of(j));
    } else {
      std::printf("  vm%zu -> REJECTED\n", k);
    }
  }
  std::printf("\nObjectives (Eq. 15 terms): usage+opex %.2f, downtime %.2f,"
              " migration %.2f\n",
              result.objectives.usage_cost, result.objectives.downtime_cost,
              result.objectives.migration_cost);
  std::printf("Constraint violations in raw output: %u (must be 0 for the"
              " hybrid)\n",
              result.raw_violations.total());

  // 5. Verify the relationships held.
  const Placement& p = result.placement;
  std::printf("\nRelationship check:\n");
  std::printf("  vm0/vm1 same server:      %s\n",
              p.server_of(0) == p.server_of(1) ? "yes" : "NO");
  const auto dc = [&](std::size_t k) {
    return instance.infra.datacenter_of(
        static_cast<std::size_t>(p.server_of(k)));
  };
  std::printf("  vm2/vm3 different DCs:    %s\n",
              dc(2) != dc(3) ? "yes" : "NO");
  std::printf("  vm4/vm5 different servers:%s\n",
              p.server_of(4) != p.server_of(5) ? " yes" : " NO");
  return 0;
}
