// Deploying a three-tier web service with availability requirements —
// the consumer-oriented scenario the paper's introduction motivates:
// users express interests (co-location for latency, separation for fault
// tolerance) instead of accepting a provider-centric placement.
//
// Topology-aware reading of the result: the spine-leaf fabric (Fig. 1)
// tells us the hop distances and path redundancy the placement achieves.
//
//   $ ./affinity_web_service
#include <cstdio>
#include <string>
#include <vector>

#include "algo/nsga_allocators.h"
#include "algo/round_robin.h"
#include "workload/generator.h"

using namespace iaas;

namespace {

VmRequest flavor(double cpu, double ram, double disk, double qos,
                 double downtime, double migration) {
  VmRequest vm;
  vm.demand = {cpu, ram, disk};
  vm.qos_guarantee = qos;
  vm.downtime_cost = downtime;
  vm.migration_cost = migration;
  return vm;
}

}  // namespace

int main() {
  // Provider: 3 datacenters, 48 servers.
  ScenarioConfig scenario;
  scenario.datacenters = 3;
  scenario.total_servers = 48;
  const ScenarioGenerator generator(scenario);
  Infrastructure infra = generator.generate_infrastructure(7);
  std::printf("Infrastructure: %s\n\n", infra.fabric().summary().c_str());

  // Consumer request: the full service topology.
  //   0,1   load balancers        - one per fault domain (different DCs)
  //   2,3,4 web/app servers       - anti-affinity on hosts
  //   5,6   cache sidecars        - co-located with web 2 and web 3
  //   7     database primary      - strict QoS
  //   8     database replica      - different datacenter than primary
  RequestSet requests;
  const std::vector<std::string> roles = {
      "lb-a",    "lb-b",    "web-1",  "web-2",     "web-3",
      "cache-1", "cache-2", "db-main", "db-replica"};
  requests.vms = {
      flavor(2, 4, 40, 0.90, 20, 4),   flavor(2, 4, 40, 0.90, 20, 4),
      flavor(4, 8, 80, 0.88, 15, 3),   flavor(4, 8, 80, 0.88, 15, 3),
      flavor(4, 8, 80, 0.88, 15, 3),   flavor(1, 4, 20, 0.85, 5, 1),
      flavor(1, 4, 20, 0.85, 5, 1),    flavor(8, 32, 320, 0.93, 50, 8),
      flavor(8, 32, 320, 0.93, 50, 8)};
  requests.constraints = {
      {RelationKind::kDifferentDatacenters, {0, 1}},  // LB fault domains
      {RelationKind::kDifferentServers, {2, 3, 4}},   // web anti-affinity
      {RelationKind::kSameServer, {2, 5}},            // cache beside web-1
      {RelationKind::kSameServer, {3, 6}},            // cache beside web-2
      {RelationKind::kDifferentDatacenters, {7, 8}},  // DB DR split
      {RelationKind::kSameDatacenter, {2, 7}},        // app near primary DB
  };

  Instance instance(std::move(infra), std::move(requests));
  const Fabric& fabric = instance.infra.fabric();

  // Compare the naive baseline against the paper's hybrid.
  RoundRobinAllocator rr;
  Nsga3TabuAllocator hybrid;
  for (Allocator* allocator :
       std::vector<Allocator*>{&rr, &hybrid}) {
    const AllocationResult result = allocator->allocate(instance, 11);
    std::printf("--- %s ---\n", result.algorithm.c_str());
    std::printf("placed %zu/%zu, usage+opex cost %.2f, %.3fs\n",
                result.vm_count - result.rejected, result.vm_count,
                result.objectives.usage_cost, result.wall_seconds);
    for (std::size_t k = 0; k < result.vm_count; ++k) {
      if (!result.placement.is_assigned(k)) {
        std::printf("  %-10s REJECTED\n", roles[k].c_str());
        continue;
      }
      const auto j =
          static_cast<std::uint32_t>(result.placement.server_of(k));
      std::printf("  %-10s server %3u  dc %u  leaf %u\n", roles[k].c_str(),
                  j, fabric.datacenter_of_server(j),
                  fabric.leaf_of_server(j));
    }
    // Availability facts from the fabric.
    if (result.placement.is_assigned(7) && result.placement.is_assigned(8)) {
      const auto a = static_cast<std::uint32_t>(result.placement.server_of(7));
      const auto b = static_cast<std::uint32_t>(result.placement.server_of(8));
      std::printf("  db-main <-> db-replica: %u hops, %u disjoint paths,"
                  " %.0f Gbps bottleneck\n",
                  fabric.hop_distance(a, b), fabric.path_redundancy(a, b),
                  fabric.path_bandwidth_gbps(a, b));
    }
    std::printf("\n");
  }
  return 0;
}
