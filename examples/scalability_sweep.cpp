// Command-line driver: allocate one generated scenario with any of the
// six algorithms and print the full metric record — a minimal operational
// front-end to the library.
//
//   $ ./scalability_sweep [algorithm] [servers] [seed]
//   $ ./scalability_sweep NSGA-III+Tabu 200 7
//   $ ./scalability_sweep all 64
#include <cstdio>
#include <cstdlib>
#include <string>

#include "algo/registry.h"
#include "common/table.h"
#include "workload/generator.h"

using namespace iaas;

namespace {

void print_result(const AllocationResult& r) {
  std::printf(
      "%-22s time %8.3fs  rejected %4zu/%zu (%.1f%%)  violations %3u  "
      "cost %.2f (usage %.2f, downtime %.2f, migration %.2f)\n",
      r.algorithm.c_str(), r.wall_seconds, r.rejected, r.vm_count,
      100.0 * r.rejection_rate(), r.raw_violations.total(),
      r.objectives.aggregate(), r.objectives.usage_cost,
      r.objectives.downtime_cost, r.objectives.migration_cost);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string algo = argc > 1 ? argv[1] : "all";
  const auto servers = static_cast<std::uint32_t>(
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64);
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  ScenarioConfig scenario = ScenarioConfig::paper_scale(servers);
  const ScenarioGenerator generator(scenario);
  const Instance instance = generator.generate(seed);
  std::printf("Scenario: %zu servers, %zu VMs, %zu relationship groups,"
              " seed %llu\n\n",
              instance.m(), instance.n(),
              instance.requests.constraints.size(),
              static_cast<unsigned long long>(seed));

  SuiteOptions suite;
  suite.ea.nsga.threads = 0;
  suite.cp.time_limit_seconds = 15.0;

  bool matched = false;
  for (AlgorithmId id : all_algorithms()) {
    if (algo != "all" && algorithm_name(id) != algo) {
      continue;
    }
    matched = true;
    print_result(make_allocator(id, suite)->allocate(instance, seed));
  }
  if (!matched) {
    std::fprintf(stderr, "unknown algorithm '%s'; one of:\n", algo.c_str());
    for (AlgorithmId id : all_algorithms()) {
      std::fprintf(stderr, "  %s\n", algorithm_name(id).c_str());
    }
    return 1;
  }
  return 0;
}
